// vcfr — command-line driver for the whole pipeline.
//
// Run `vcfr` with no arguments for the full per-subcommand flag listing
// (kept in usage() below). Flags accept both `--flag value` and
// `--flag=value` spellings, and every subcommand rejects flags it does
// not understand.
//
// The telemetry flags (--stats-json, --trace-out, --sample-interval,
// --sample-out) are shared by run/sim/workload/fleet and are documented
// in docs/OBSERVABILITY.md.
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "binary/serialize.hpp"
#include "emu/emulator.hpp"
#include "emu/trace.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "os/kernel.hpp"
#include "profile/profiler.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/entropy.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/telemetry.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace vcfr;

/// Destination for human-readable reports. Normally stdout; flipped to
/// stderr when any output flag streams its payload to stdout via `-`, so
/// pipelines receive only the requested payload.
FILE* g_report = stdout;

__attribute__((format(printf, 1, 2))) int rprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vfprintf(g_report, fmt, ap);
  va_end(ap);
  return n;
}

struct Args {
  std::vector<std::string> positional;
  std::string output;
  uint64_t seed = 1;
  uint64_t max_instr = 100'000'000;
  uint32_t drc = 128;
  int scale = 1;
  bool naive = false;
  bool software_returns = false;
  bool page_confined = false;
  bool enforce_tags = false;
  bool regs = false;
  uint32_t procs = 4;
  uint32_t cores = 2;
  uint64_t slice = 50'000;
  uint32_t rerand = 0;
  std::string workload_list;
  bool json = false;
  bool no_baseline = false;
  // Fault containment (fleet) and campaign (faultcamp) controls.
  std::string restart;       // never | on-fault | always
  uint32_t max_restarts = 3;
  uint64_t backoff = 8;
  uint64_t watchdog = 0;
  std::string inject;        // pid:site:instr[:seed]
  std::string layout_list;   // native,naive,vcfr
  std::string site_list;     // code_byte,translation_entry,...
  uint32_t trials = 4;
  // Telemetry outputs (docs/OBSERVABILITY.md).
  std::string stats_json;
  std::string trace_out;
  std::string sample_out;
  uint64_t sample_interval = 0;
  // Guest profiler outputs (run|sim|fleet|prof).
  std::string profile_out;
  std::string flame_out;
  uint32_t top = 10;
  /// Canonical names of every flag given, for per-subcommand validation.
  std::vector<std::string> seen;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::optional<std::string> inline_value;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a = a.substr(0, eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + a);
      return argv[++i];
    };
    auto boolean = [&]() {
      if (inline_value) throw std::runtime_error(a + " does not take a value");
      return true;
    };
    if (!a.empty() && a[0] == '-') {
      args.seen.push_back(a == "-o" ? "--output" : a);
    }
    if (a == "-o" || a == "--output") {
      args.output = value();
    } else if (a == "--seed") {
      args.seed = std::stoull(value());
    } else if (a == "--max-instr") {
      args.max_instr = std::stoull(value());
    } else if (a == "--drc") {
      args.drc = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--scale") {
      args.scale = std::stoi(value());
    } else if (a == "--naive") {
      args.naive = boolean();
    } else if (a == "--software-returns") {
      args.software_returns = boolean();
    } else if (a == "--page-confined") {
      args.page_confined = boolean();
    } else if (a == "--enforce-tags") {
      args.enforce_tags = boolean();
    } else if (a == "--regs") {
      args.regs = boolean();
    } else if (a == "--procs") {
      args.procs = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--cores") {
      args.cores = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--slice") {
      args.slice = std::stoull(value());
    } else if (a == "--rerand") {
      args.rerand = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--workloads") {
      args.workload_list = value();
    } else if (a == "--restart") {
      args.restart = value();
    } else if (a == "--max-restarts") {
      args.max_restarts = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--backoff") {
      args.backoff = std::stoull(value());
    } else if (a == "--watchdog") {
      args.watchdog = std::stoull(value());
    } else if (a == "--inject") {
      args.inject = value();
    } else if (a == "--layouts") {
      args.layout_list = value();
    } else if (a == "--sites") {
      args.site_list = value();
    } else if (a == "--trials") {
      args.trials = static_cast<uint32_t>(std::stoul(value()));
    } else if (a == "--json") {
      args.json = boolean();
    } else if (a == "--no-baseline") {
      args.no_baseline = boolean();
    } else if (a == "--stats-json") {
      args.stats_json = value();
    } else if (a == "--trace-out") {
      args.trace_out = value();
    } else if (a == "--sample-interval") {
      args.sample_interval = std::stoull(value());
    } else if (a == "--sample-out") {
      args.sample_out = value();
    } else if (a == "--profile-out") {
      args.profile_out = value();
    } else if (a == "--flame-out") {
      args.flame_out = value();
    } else if (a == "--top") {
      args.top = static_cast<uint32_t>(std::stoul(value()));
    } else if (!a.empty() && a[0] == '-') {
      throw std::runtime_error("unknown flag: " + a);
    } else {
      args.positional.push_back(a);
    }
  }
  if (args.sample_interval > 0 && args.sample_out.empty()) {
    throw std::runtime_error("--sample-interval requires --sample-out");
  }
  if (args.sample_interval == 0 && !args.sample_out.empty()) {
    throw std::runtime_error("--sample-out requires --sample-interval");
  }
  return args;
}

/// Per-subcommand flag whitelist: a flag the global parser knows but the
/// subcommand does not use is an error, not a silent no-op.
void validate_flags(const std::string& cmd, const Args& args) {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"asm", {"--output"}},
      {"disasm", {}},
      {"stats", {}},
      {"randomize",
       {"--output", "--seed", "--naive", "--software-returns",
        "--page-confined"}},
      {"run",
       {"--enforce-tags", "--max-instr", "--stats-json", "--trace-out",
        "--sample-interval", "--sample-out", "--profile-out", "--flame-out",
        "--top"}},
      {"sim",
       {"--drc", "--max-instr", "--stats-json", "--trace-out",
        "--sample-interval", "--sample-out", "--profile-out", "--flame-out",
        "--top"}},
      {"scan", {}},
      {"workload",
       {"--output", "--scale", "--stats-json", "--trace-out",
        "--sample-interval", "--sample-out"}},
      {"trace", {"--max-instr", "--regs"}},
      {"cfg", {}},
      {"entropy", {"--seed", "--page-confined"}},
      {"fleet",
       {"--procs", "--cores", "--slice", "--rerand", "--workloads", "--scale",
        "--seed", "--json", "--no-baseline", "--drc", "--max-instr",
        "--restart", "--max-restarts", "--backoff", "--watchdog", "--inject",
        "--stats-json", "--trace-out", "--sample-interval", "--sample-out",
        "--profile-out", "--top"}},
      {"prof",
       {"--seed", "--drc", "--max-instr", "--top", "--profile-out",
        "--flame-out"}},
      {"faultcamp",
       {"--workloads", "--scale", "--seed", "--trials", "--max-instr",
        "--layouts", "--sites", "--json", "--output", "--stats-json"}},
  };
  const auto it = kAllowed.find(cmd);
  if (it == kAllowed.end()) return;  // unknown command: usage() handles it
  for (const std::string& flag : args.seen) {
    if (it->second.count(flag) == 0) {
      throw std::runtime_error("flag " + flag + " is not accepted by '" +
                               cmd + "' (run vcfr with no arguments for "
                               "per-command flags)");
    }
  }
}

// ---- telemetry plumbing (shared by run/sim/workload/fleet) ----

bool telemetry_requested(const Args& args) {
  return !args.stats_json.empty() || !args.trace_out.empty() ||
         args.sample_interval > 0;
}

telemetry::TelemetryConfig telemetry_config(const Args& args) {
  telemetry::TelemetryConfig tc;
  tc.trace = !args.trace_out.empty();
  tc.sample_interval = args.sample_interval;
  return tc;
}

void write_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    // Scripting convention: `-` streams to stdout instead of creating a
    // file literally named "-". Progress messages all go to stderr, so
    // the payload stays clean for pipelines.
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

void export_telemetry(const Args& args, telemetry::Telemetry& tel) {
  if (!args.stats_json.empty()) {
    write_file(args.stats_json, tel.registry().to_json());
    std::fprintf(stderr, "stats: %s\n", args.stats_json.c_str());
  }
  if (!args.trace_out.empty()) {
    write_file(args.trace_out, tel.tracer()->to_chrome_json());
    std::fprintf(stderr, "trace: %s (%llu events dropped)\n",
                 args.trace_out.c_str(),
                 static_cast<unsigned long long>(tel.tracer()->dropped()));
  }
  if (args.sample_interval > 0) {
    const bool as_json =
        args.sample_out.size() >= 5 &&
        args.sample_out.compare(args.sample_out.size() - 5, 5, ".json") == 0;
    write_file(args.sample_out, as_json ? tel.sampler().to_json()
                                        : tel.sampler().to_csv());
    std::fprintf(stderr, "samples: %s (%zu rows)\n", args.sample_out.c_str(),
                 tel.sampler().rows());
  }
}

std::string require_input(const Args& args) {
  if (args.positional.empty()) throw std::runtime_error("missing input file");
  return args.positional.front();
}

// ---- guest-profiler plumbing (run/sim/fleet/prof) ----

profile::ProfileMeta profile_meta(const binary::Image& image,
                                  uint64_t expected_cycles) {
  profile::ProfileMeta meta;
  meta.app = image.name;
  meta.layout = std::string(profile::layout_name(image.layout));
  meta.seed = image.seed;
  meta.expected_cycles = expected_cycles;
  return meta;
}

void export_profile(const Args& args, const profile::Profiler& prof,
                    const profile::ProfileMeta& meta) {
  if (!args.profile_out.empty()) {
    write_file(args.profile_out, prof.to_json(meta, args.top) + "\n");
    if (args.profile_out != "-") {
      std::fprintf(stderr, "profile: %s\n", args.profile_out.c_str());
    }
  }
  if (!args.flame_out.empty()) {
    write_file(args.flame_out, prof.to_collapsed());
    if (args.flame_out != "-") {
      std::fprintf(stderr, "flamegraph: %s\n", args.flame_out.c_str());
    }
  }
}

/// Per-tenant output path for fleet profiles: "x.json" -> "x.pid3.json";
/// "-" stays "-" (tenant profiles concatenate on stdout in pid order).
std::string per_pid_path(const std::string& path, uint32_t pid) {
  if (path == "-") return path;
  const std::string tag = ".pid" + std::to_string(pid);
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || dot == 0) return path + tag;
  return path.substr(0, dot) + tag + path.substr(dot);
}

int cmd_asm(const Args& args) {
  const std::string path = require_input(args);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  binary::Image image = isa::assemble(ss.str());
  if (image.name.empty()) image.name = path;
  const std::string out = args.output.empty() ? path + ".vxe" : args.output;
  binary::save(image, out);
  rprintf("assembled %zu code bytes, %zu data bytes -> %s\n",
              image.code.size(), image.data.size(), out.c_str());
  return 0;
}

int cmd_disasm(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (image.layout == binary::Layout::kNaiveIlr) {
    rprintf("; naive-ILR image: %zu relocated instructions\n",
                image.sparse_code.size());
    for (const auto& [addr, bytes] : image.sparse_code) {
      const auto d = isa::decode(bytes);
      if (d) rprintf("%08x: %s\n", addr, isa::format_instr(*d).c_str());
    }
    return 0;
  }
  std::fputs(isa::listing(image).c_str(), stdout);
  return 0;
}

int cmd_stats(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  const auto s = rewriter::static_stats(image, cfg);
  rprintf("name:                %s\n", image.name.c_str());
  rprintf("instructions:        %llu\n",
              static_cast<unsigned long long>(s.instructions));
  rprintf("direct transfers:    %llu\n",
              static_cast<unsigned long long>(s.direct_transfers));
  rprintf("indirect transfers:  %llu\n",
              static_cast<unsigned long long>(s.indirect_transfers));
  rprintf("function calls:      %llu (indirect: %llu)\n",
              static_cast<unsigned long long>(s.function_calls),
              static_cast<unsigned long long>(s.indirect_calls));
  rprintf("returns:             %llu\n",
              static_cast<unsigned long long>(s.returns));
  rprintf("functions with ret:  %llu, without: %llu\n",
              static_cast<unsigned long long>(s.functions_with_ret),
              static_cast<unsigned long long>(s.functions_without_ret));
  return 0;
}

int cmd_randomize(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.software_returns) {
    opts.return_option = rewriter::ReturnOption::kSoftwareRewrite;
  }
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto& out_image = args.naive ? rr.naive : rr.vcfr;
  const std::string out =
      args.output.empty() ? image.name + (args.naive ? ".naive.vxe" : ".vcfr.vxe")
                          : args.output;
  binary::save(out_image, out);
  rprintf("relocated %zu instructions (seed %llu); failover set: %zu; "
              "-> %s\n",
              rr.placement.size(),
              static_cast<unsigned long long>(args.seed),
              rr.analysis.unrandomized.size(), out.c_str());
  if (args.software_returns) {
    rprintf("software return rewrite: %u calls, +%.1f%% code\n",
                rr.sw_stats.calls_rewritten,
                rr.sw_stats.expansion_percent());
  }
  return 0;
}

int cmd_run(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (!telemetry_requested(args) && args.profile_out.empty()) {
    emu::RunLimits limits;
    limits.max_instructions = args.max_instr;
    limits.enforce_tags = args.enforce_tags;
    const auto r = emu::run_image(image, limits);
    for (uint32_t v : r.output) rprintf("out: %u (0x%x)\n", v, v);
    rprintf("%s after %llu instructions",
                r.halted ? "halted" : (r.error.empty() ? "limit" : "FAULT"),
                static_cast<unsigned long long>(r.stats.instructions));
    if (!r.error.empty()) rprintf(": %s", r.error.c_str());
    rprintf("\n");
    return r.halted ? 0 : 1;
  }

  // Telemetry path: step the golden model by hand so each instruction's
  // translation events are visible. The functional model has no clock;
  // events and samples are stamped with the instruction index, which is
  // just as deterministic.
  telemetry::Telemetry tel(telemetry_config(args));
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emulator(image, mem);
  if (args.enforce_tags) emulator.set_enforce_tags(true);
  std::optional<profile::Profiler> prof;
  if (!args.profile_out.empty()) {
    prof.emplace(image);
    emulator.set_profiler(&*prof);
  }
  const emu::EmuStats& st = emulator.stats();
  telemetry::Scope scope = tel.root().scope("emu");
  scope.counter("instructions", &st.instructions);
  scope.counter("calls", &st.calls);
  scope.counter("returns", &st.returns);
  scope.counter("indirect_transfers", &st.indirect_transfers);
  scope.counter("derand_events", &st.derand_events);
  scope.counter("rand_events", &st.rand_events);
  scope.counter("bitmap_autoderand_loads", &st.bitmap_autoderand_loads);
  scope.counter("tag_violations", &st.tag_violations);
  // Host-side decoded-instruction cache (deterministic for a given run,
  // but about how the host executed the model, not what the model did).
  const emu::DecodeCacheStats& dc = emulator.decode_cache_stats();
  const telemetry::Scope dcache = scope.scope("decode_cache");
  dcache.counter("hits", &dc.hits);
  dcache.counter("misses", &dc.misses);
  dcache.counter("invalidations", &dc.invalidations);
  telemetry::TraceLane* lane = tel.lane(0);
  if (tel.tracer() != nullptr) {
    tel.tracer()->name_lane(0, "emulator");
    tel.tracer()->name_asid(0, 0, image.name.empty() ? "golden model"
                                                     : image.name);
  }
  emu::StepInfo info;
  while (st.instructions < args.max_instr) {
    if (!emulator.step(&info)) break;
    const uint64_t n = st.instructions;  // index of the retired instruction
    if (lane != nullptr) {
      if (info.needs_derand) {
        lane->instant(telemetry::TraceEventType::kDerand, 0, n,
                      info.derand_key);
      }
      if (info.needs_rand) {
        lane->instant(telemetry::TraceEventType::kRand, 0, n, info.rand_key);
      }
      if (info.bitmap_load) {
        lane->instant(telemetry::TraceEventType::kBitmapLoad, 0, n,
                      info.mem_addr);
      }
    }
    tel.sampler().poll(n);
    if (emulator.halted()) break;
  }
  for (uint32_t v : emulator.output()) rprintf("out: %u (0x%x)\n", v, v);
  const std::string& err = emulator.error();
  rprintf("%s after %llu instructions",
              emulator.halted() ? "halted" : (err.empty() ? "limit" : "FAULT"),
              static_cast<unsigned long long>(st.instructions));
  if (!err.empty()) rprintf(": %s", err.c_str());
  rprintf("\n");
  export_telemetry(args, tel);
  if (prof) {
    // Functional model: one cycle per instruction, so the expected total
    // is the profiler's own count and "conserved" pins the delta stream.
    export_profile(args, *prof, profile_meta(image, prof->attributed_cycles()));
  }
  return emulator.halted() ? 0 : 1;
}

int cmd_sim(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  sim::CpuConfig config;
  config.drc.entries = args.drc;
  std::optional<telemetry::Telemetry> tel;
  if (telemetry_requested(args)) tel.emplace(telemetry_config(args));
  std::optional<profile::Profiler> prof;
  if (!args.profile_out.empty()) prof.emplace(image);
  const auto r = sim::simulate(image, args.max_instr, config,
                               tel ? &*tel : nullptr,
                               prof ? &*prof : nullptr);
  rprintf("instructions: %llu\ncycles:       %llu\nIPC:          %.3f\n",
              static_cast<unsigned long long>(r.instructions),
              static_cast<unsigned long long>(r.cycles), r.ipc());
  rprintf("IL1 miss:     %.3f%%   DL1 miss: %.3f%%   L2 miss: %.3f%%\n",
              100 * r.il1.miss_rate(), 100 * r.dl1.miss_rate(),
              100 * r.l2.miss_rate());
  rprintf("branch acc:   %.2f%%   DRC: %llu lookups, %.1f%% miss\n",
              100 * r.bpred.cond_accuracy(),
              static_cast<unsigned long long>(r.drc.lookups),
              100 * r.drc.miss_rate());
  rprintf("power:        %s\n", r.power.report().c_str());
  if (tel) export_telemetry(args, *tel);
  if (prof) export_profile(args, *prof, profile_meta(image, r.cycles));
  return 0;
}

int cmd_scan(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto result = gadget::scan(image);
  rprintf("%zu gadgets (%llu aligned, %llu unaligned) in %llu bytes\n",
              result.gadgets.size(),
              static_cast<unsigned long long>(result.aligned_count),
              static_cast<unsigned long long>(result.unaligned_count),
              static_cast<unsigned long long>(result.bytes_scanned));
  for (auto kind :
       {gadget::GadgetKind::kPopReg, gadget::GadgetKind::kMovReg,
        gadget::GadgetKind::kArith, gadget::GadgetKind::kLoad,
        gadget::GadgetKind::kStore, gadget::GadgetKind::kSys,
        gadget::GadgetKind::kOther}) {
    rprintf("  %-8s %zu\n", std::string(gadget::kind_name(kind)).c_str(),
                result.count(kind));
  }
  const auto payloads = gadget::compile_payloads(result.gadgets);
  for (const auto& p : payloads) {
    rprintf("payload '%s': %s\n", p.name.c_str(),
                p.assembled ? "ASSEMBLED" : "failed");
  }
  return 0;
}

int cmd_workload(const Args& args) {
  const std::string name = require_input(args);
  const auto image = workloads::make(name, args.scale);
  const std::string out = args.output.empty() ? name + ".vxe" : args.output;
  binary::save(image, out);
  rprintf("%s (scale %d): %zu code bytes -> %s\n", name.c_str(),
              args.scale, image.code.size(), out.c_str());
  if (telemetry_requested(args)) {
    // Static stats only: there is no execution here, so the trace and
    // sample outputs are valid but empty.
    telemetry::Telemetry tel(telemetry_config(args));
    telemetry::Scope scope = tel.root().scope("workload");
    const auto cfg = rewriter::build_cfg(image);
    const auto s = rewriter::static_stats(image, cfg);
    const uint64_t code_bytes = image.code.size();
    const uint64_t data_bytes = image.data.size();
    scope.counter_fn("code_bytes", [code_bytes] { return code_bytes; });
    scope.counter_fn("data_bytes", [data_bytes] { return data_bytes; });
    scope.counter_fn("instructions", [s] { return s.instructions; });
    scope.counter_fn("direct_transfers", [s] { return s.direct_transfers; });
    scope.counter_fn("indirect_transfers",
                     [s] { return s.indirect_transfers; });
    scope.counter_fn("returns", [s] { return s.returns; });
    export_telemetry(args, tel);
  }
  return 0;
}

int cmd_trace(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  emu::TraceOptions opts;
  opts.max_steps = args.max_instr == 100'000'000 ? 64 : args.max_instr;
  opts.show_registers = args.regs;
  std::fputs(emu::trace(image, opts).c_str(), stdout);
  return 0;
}

int cmd_cfg(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  const auto cfg = rewriter::build_cfg(image);
  std::fputs(rewriter::to_dot(cfg).c_str(), stdout);
  return 0;
}

int cmd_entropy(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  if (args.page_confined) {
    opts.placement = rewriter::PlacementPolicy::kPageConfined;
  }
  const auto rr = rewriter::randomize(image, opts);
  const auto report = rewriter::analyze_entropy(rr, opts);
  rprintf("randomized instructions: %zu\n", report.randomized_instructions);
  rprintf("failover instructions:   %zu (zero entropy)\n",
              report.failover_instructions);
  rprintf("entropy coverage:        %.2f%%\n", 100 * report.coverage());
  rprintf("bits per instruction:    %.1f\n", report.bits_per_instruction);
  rprintf("single-guess hit prob:   %.3g\n",
              report.single_guess_probability);
  rprintf("expected crash attempts: %.3g\n", report.expected_attempts);
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

os::RestartPolicy::Mode parse_restart_mode(const std::string& name) {
  if (name == "never") return os::RestartPolicy::Mode::kNever;
  if (name == "on-fault") return os::RestartPolicy::Mode::kOnFault;
  if (name == "always") return os::RestartPolicy::Mode::kAlways;
  throw std::runtime_error("--restart expects never|on-fault|always, got '" +
                           name + "'");
}

/// --inject pid:site:instr[:seed] — arm one corruption in one process.
struct InjectSpec {
  uint32_t pid = 0;
  fault::FaultPlan plan;
};

InjectSpec parse_inject(const std::string& spec) {
  const std::vector<std::string> parts = split_list([&] {
    std::string s = spec;
    for (char& c : s) {
      if (c == ':') c = ',';
    }
    return s;
  }());
  if (parts.size() < 3 || parts.size() > 4) {
    throw std::runtime_error(
        "--inject expects pid:site:instr[:seed], got '" + spec + "'");
  }
  InjectSpec out;
  out.pid = static_cast<uint32_t>(std::stoul(parts[0]));
  const auto site = fault::parse_site(parts[1]);
  if (!site) {
    throw std::runtime_error("--inject: unknown fault site '" + parts[1] +
                             "' (code_byte|translation_entry|ret_slot|"
                             "ret_bitmap|payload)");
  }
  out.plan.site = *site;
  out.plan.at_instruction = std::stoull(parts[2]);
  out.plan.seed = parts.size() == 4 ? std::stoull(parts[3]) : 1;
  return out;
}

int cmd_fleet(const Args& args) {
  os::KernelConfig kc;
  kc.cores = args.cores;
  kc.sched.slice_instructions = args.slice;
  kc.cpu.drc.entries = args.drc;
  kc.measure_isolated = !args.no_baseline;

  // Workloads: explicit comma-separated list, or cycle the SPEC-like
  // suite in the paper's order.
  std::vector<std::string> names = !args.workload_list.empty()
                                       ? split_list(args.workload_list)
                                       : workloads::spec_names();
  if (names.empty()) throw std::runtime_error("no workloads given");

  os::RestartPolicy restart;
  if (!args.restart.empty()) restart.mode = parse_restart_mode(args.restart);
  restart.max_restarts = args.max_restarts;
  restart.backoff_rounds = args.backoff;
  std::optional<InjectSpec> inject;
  if (!args.inject.empty()) inject = parse_inject(args.inject);

  os::Kernel kernel(kc);
  if (!args.profile_out.empty()) kernel.enable_profiling();
  std::optional<telemetry::Telemetry> tel;
  if (telemetry_requested(args)) {
    tel.emplace(telemetry_config(args));
    kernel.attach_telemetry(&*tel);
  }
  for (uint32_t i = 0; i < args.procs; ++i) {
    os::ProcessConfig pc;
    pc.workload = names[i % names.size()];
    pc.scale = args.scale;
    // Distinct placement per process even under one fleet seed.
    pc.seed = args.seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    pc.max_instructions = args.max_instr;
    pc.rerandomize.every_slices = args.rerand;
    pc.restart = restart;
    pc.watchdog_instructions = args.watchdog;
    if (inject && inject->pid == i) {
      pc.inject = inject->plan;
      pc.inject_enabled = true;
    }
    kernel.spawn(pc);
  }
  if (inject && inject->pid >= args.procs) {
    throw std::runtime_error("--inject pid out of range (procs=" +
                             std::to_string(args.procs) + ")");
  }

  const os::FleetReport report = kernel.run();
  if (tel) export_telemetry(args, *tel);
  if (!args.profile_out.empty()) {
    // One profile per tenant; shared-L2 contention appears in each
    // tenant's l2_contention_by_asid keyed by the interfering asid
    // (asid == pid in the fleet).
    for (uint32_t pid = 0; pid < kernel.process_count(); ++pid) {
      const profile::Profiler* prof = kernel.profiler(pid);
      profile::ProfileMeta meta;
      meta.app = kernel.process(pid).config().workload;
      meta.layout = "vcfr";
      meta.seed = kernel.process(pid).config().seed;
      meta.expected_cycles = prof->attributed_cycles();
      const std::string path = per_pid_path(args.profile_out, pid);
      write_file(path, prof->to_json(meta, args.top) + "\n");
      if (path != "-") std::fprintf(stderr, "profile: %s\n", path.c_str());
    }
  }
  if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), g_report);
    std::fputs(report.to_json().c_str(), g_report);
  }
  // Exit status reflects the fleet's final state: a crash that the
  // restart policy recovered from (process came back and halted) is a
  // success; an unrecovered fault or watchdog kill is not.
  for (const auto& p : report.processes) {
    if (!p.arch_match && kc.measure_isolated) return 1;
    if (p.exit == fault::exit_name(fault::ExitCode::kFaulted) ||
        p.exit == fault::exit_name(fault::ExitCode::kWatchdogKill)) {
      return 1;
    }
  }
  return 0;
}

int cmd_prof(const Args& args) {
  const auto image = binary::load_file(require_input(args));
  if (image.layout == binary::Layout::kNaiveIlr) {
    throw std::runtime_error(
        "prof: naive-ILR images have no original-space mapping to fold "
        "samples onto (profile the original or VCFR image instead)");
  }
  sim::CpuConfig config;
  config.drc.entries = args.drc;

  const auto print_causes = [](const char* label,
                               const profile::Profiler& prof) {
    rprintf("%s%scause breakdown (cycles):\n", label,
                label[0] == '\0' ? "" : " ");
    for (size_t c = 0; c < profile::kNumCauses; ++c) {
      const auto cause = static_cast<profile::Cause>(c);
      const uint64_t cycles = prof.cause_cycles(cause);
      if (cycles == 0) continue;
      rprintf("  %-16s %llu\n",
                  std::string(profile::cause_name(cause)).c_str(),
                  static_cast<unsigned long long>(cycles));
    }
  };

  if (image.layout == binary::Layout::kVcfr) {
    // Already-randomized input: one attributed profile.
    profile::Profiler prof(image);
    const auto res =
        sim::simulate(image, args.max_instr, config, nullptr, &prof);
    const profile::ProfileMeta meta = profile_meta(image, res.cycles);
    rprintf("guest profile: %s (%s, seed %llu)\n", meta.app.c_str(),
                meta.layout.c_str(),
                static_cast<unsigned long long>(meta.seed));
    rprintf("instructions: %llu  cycles: %llu  resolved: %.1f%%\n",
                static_cast<unsigned long long>(prof.instructions()),
                static_cast<unsigned long long>(prof.attributed_cycles()),
                100 * prof.resolved_fraction());
    print_causes("", prof);
    rprintf("\nfunctions (cycles desc):\n");
    for (const auto& f : prof.functions()) {
      rprintf("  %-24s %12llu cycles %12llu instr\n", f.name.c_str(),
                  static_cast<unsigned long long>(f.cycles),
                  static_cast<unsigned long long>(f.instructions));
    }
    rprintf("\n%s", prof.to_hot_blocks(meta, args.top).c_str());
    export_profile(args, prof, meta);
    return 0;
  }

  // Original input: profile it natively AND as its seed-randomized VCFR
  // sibling, then report per-function overhead (the paper's Figs. 13-14
  // view: where VCFR's extra cycles land in the guest).
  rewriter::RandomizeOptions opts;
  opts.seed = args.seed;
  const auto rr = rewriter::randomize(image, opts);
  profile::Profiler native_prof(image);
  profile::Profiler vcfr_prof(rr.vcfr);
  const auto native_res =
      sim::simulate(image, args.max_instr, config, nullptr, &native_prof);
  const auto vcfr_res =
      sim::simulate(rr.vcfr, args.max_instr, config, nullptr, &vcfr_prof);
  const profile::ProfileMeta native_meta =
      profile_meta(image, native_res.cycles);
  const profile::ProfileMeta vcfr_meta = profile_meta(rr.vcfr, vcfr_res.cycles);

  // Per-function comparison matched by name; a function with no samples on
  // one side reports 0 cycles there. VCFR-hot functions first.
  struct CmpRow {
    std::string name;
    uint64_t native = 0;
    uint64_t vcfr = 0;
  };
  const auto nf = native_prof.functions();
  const auto vf = vcfr_prof.functions();
  std::map<std::string, uint64_t> native_left;
  for (const auto& f : nf) native_left[f.name] = f.cycles;
  std::vector<CmpRow> rows;
  for (const auto& f : vf) {
    CmpRow row{f.name, 0, f.cycles};
    const auto it = native_left.find(f.name);
    if (it != native_left.end()) {
      row.native = it->second;
      native_left.erase(it);
    }
    rows.push_back(std::move(row));
  }
  for (const auto& f : nf) {
    if (native_left.count(f.name) != 0) rows.push_back({f.name, f.cycles, 0});
  }

  const double overhead =
      native_res.cycles == 0 ? 0.0
                             : static_cast<double>(vcfr_res.cycles) /
                                   static_cast<double>(native_res.cycles);
  rprintf("guest profile: %s (seed %llu), VCFR vs native\n",
              image.name.c_str(),
              static_cast<unsigned long long>(args.seed));
  rprintf("total: native %llu cycles, vcfr %llu cycles (%.3fx)\n",
              static_cast<unsigned long long>(native_res.cycles),
              static_cast<unsigned long long>(vcfr_res.cycles), overhead);
  rprintf("%-24s %14s %14s %8s\n", "function", "native", "vcfr", "ratio");
  for (const CmpRow& row : rows) {
    if (row.native == 0) {
      rprintf("%-24s %14llu %14llu %8s\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.native),
                  static_cast<unsigned long long>(row.vcfr), "-");
    } else {
      rprintf("%-24s %14llu %14llu %7.3fx\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.native),
                  static_cast<unsigned long long>(row.vcfr),
                  static_cast<double>(row.vcfr) /
                      static_cast<double>(row.native));
    }
  }
  rprintf("\n");
  print_causes("vcfr", vcfr_prof);
  rprintf("\n%s", vcfr_prof.to_hot_blocks(vcfr_meta, args.top).c_str());

  if (!args.profile_out.empty()) {
    telemetry::JsonWriter w;
    w.begin_object(telemetry::JsonWriter::Style::kPretty);
    w.key("native").raw_value(native_prof.to_json(native_meta, args.top));
    w.key("vcfr").raw_value(vcfr_prof.to_json(vcfr_meta, args.top));
    w.key("comparison").begin_array(telemetry::JsonWriter::Style::kPretty);
    for (const CmpRow& row : rows) {
      w.begin_object(telemetry::JsonWriter::Style::kCompact);
      w.key("name").value(row.name);
      w.key("native_cycles").value(row.native);
      w.key("vcfr_cycles").value(row.vcfr);
      w.key("overhead")
          .raw_value(telemetry::json_double(
              row.native == 0 ? 0.0
                              : static_cast<double>(row.vcfr) /
                                    static_cast<double>(row.native)));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    write_file(args.profile_out, w.str() + "\n");
    if (args.profile_out != "-") {
      std::fprintf(stderr, "profile: %s\n", args.profile_out.c_str());
    }
  }
  if (!args.flame_out.empty()) {
    write_file(args.flame_out, vcfr_prof.to_collapsed());
    if (args.flame_out != "-") {
      std::fprintf(stderr, "flamegraph: %s\n", args.flame_out.c_str());
    }
  }
  return 0;
}

int cmd_faultcamp(const Args& args) {
  fault::CampaignConfig cc;
  if (!args.workload_list.empty()) cc.workloads = split_list(args.workload_list);
  cc.scale = args.scale;
  cc.trials = args.trials;
  cc.seed = args.seed;
  // The global default budget (100M) is sized for full workloads; a hung
  // campaign trial should cost far less. Keep an explicit flag override.
  cc.max_instructions = args.max_instr == 100'000'000 ? 2'000'000
                                                      : args.max_instr;
  if (!args.layout_list.empty()) {
    cc.layouts.clear();
    for (const std::string& name : split_list(args.layout_list)) {
      if (name == "native" || name == "original") {
        cc.layouts.push_back(binary::Layout::kOriginal);
      } else if (name == "naive" || name == "naive_ilr") {
        cc.layouts.push_back(binary::Layout::kNaiveIlr);
      } else if (name == "vcfr") {
        cc.layouts.push_back(binary::Layout::kVcfr);
      } else {
        throw std::runtime_error("--layouts: unknown layout '" + name +
                                 "' (native|naive|vcfr)");
      }
    }
  }
  if (!args.site_list.empty()) {
    cc.sites.clear();
    for (const std::string& name : split_list(args.site_list)) {
      const auto site = fault::parse_site(name);
      if (!site) {
        throw std::runtime_error("--sites: unknown fault site '" + name +
                                 "' (code_byte|translation_entry|ret_slot|"
                                 "ret_bitmap|payload)");
      }
      cc.sites.push_back(*site);
    }
  }

  std::optional<telemetry::StatRegistry> registry;
  if (!args.stats_json.empty()) registry.emplace();
  const fault::CampaignReport report =
      fault::run_campaign(cc, registry ? &*registry : nullptr);
  if (registry) {
    write_file(args.stats_json, registry->to_json());
    std::fprintf(stderr, "stats: %s\n", args.stats_json.c_str());
  }
  if (!args.output.empty()) {
    write_file(args.output, report.to_json());
    std::fputs(report.summary().c_str(), g_report);
    std::fprintf(stderr, "report: %s\n", args.output.c_str());
  } else if (args.json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::fputs(report.summary().c_str(), g_report);
    std::fputs(report.to_json().c_str(), g_report);
  }
  return 0;
}

void usage() {
  std::fputs(
      "usage: vcfr <command> [flags]\n"
      "\n"
      "All flags accept both `--flag value` and `--flag=value`. Each\n"
      "command rejects flags it does not use.\n"
      "\n"
      "commands:\n"
      "  asm <src.vx> [-o out.vxe]\n"
      "      assemble VX source\n"
      "  disasm <img.vxe>\n"
      "      list instructions (handles naive-ILR sparse images)\n"
      "  stats <img.vxe>\n"
      "      static control-flow analysis\n"
      "  randomize <img.vxe> [-o out.vxe] [--seed N] [--naive]\n"
      "      [--software-returns] [--page-confined]\n"
      "      ILR-randomize; default output is the VCFR image, --naive the\n"
      "      relocated one\n"
      "  run <img.vxe> [--enforce-tags] [--max-instr N] [telemetry flags]\n"
      "      [profile flags]\n"
      "      golden-model (functional) run; telemetry stamps events with\n"
      "      the instruction index\n"
      "  sim <img.vxe> [--drc N] [--max-instr N] [telemetry flags]\n"
      "      [profile flags]\n"
      "      cycle simulation on one core\n"
      "  scan <img.vxe>\n"
      "      gadget scan + payload compilation attempt\n"
      "  workload <name> [--scale S] [-o out.vxe] [telemetry flags]\n"
      "      emit a suite program; --stats-json reports static stats\n"
      "  trace <img.vxe> [--max-instr N] [--regs]\n"
      "      per-instruction architectural trace\n"
      "  cfg <img.vxe>\n"
      "      Graphviz dot to stdout\n"
      "  entropy <img.vxe> [--seed N] [--page-confined]\n"
      "      SV-C entropy report\n"
      "  fleet [--procs N] [--cores N] [--slice N] [--rerand N]\n"
      "      [--workloads a,b,c] [--scale S] [--seed N] [--drc N]\n"
      "      [--max-instr N] [--json] [--no-baseline]\n"
      "      [--restart never|on-fault|always] [--max-restarts N]\n"
      "      [--backoff ROUNDS] [--watchdog INSTR]\n"
      "      [--inject pid:site:instr[:seed]] [telemetry flags]\n"
      "      [--profile-out PATH] [--top N]\n"
      "      time-slice N independently randomized workloads on a shared\n"
      "      L2+DRAM hierarchy; --inject arms one seeded corruption,\n"
      "      --restart re-randomizes and restarts crashed processes\n"
      "      (docs/DEPENDABILITY.md); --profile-out writes one guest\n"
      "      profile per tenant (PATH.pidN.json)\n"
      "  prof <img.vxe> [--seed N] [--drc N] [--max-instr N] [--top N]\n"
      "      [--profile-out PATH] [--flame-out PATH]\n"
      "      guest-level cycle-attribution profile (docs/OBSERVABILITY.md);\n"
      "      an original image is also randomized (--seed) and simulated as\n"
      "      VCFR for a per-function overhead comparison; a VCFR image is\n"
      "      profiled as-is\n"
      "  faultcamp [--workloads a,b,c] [--scale S] [--seed N] [--trials N]\n"
      "      [--max-instr N] [--layouts native,naive,vcfr]\n"
      "      [--sites code_byte,translation_entry,ret_slot,ret_bitmap,\n"
      "      payload] [--json] [-o report.json] [--stats-json PATH]\n"
      "      dependability campaign: sweep seeded faults over workloads x\n"
      "      layouts x sites; deterministic detection/containment report\n"
      "\n"
      "telemetry flags (run|sim|workload|fleet — docs/OBSERVABILITY.md):\n"
      "  --stats-json PATH       write the stat-registry snapshot as JSON\n"
      "  --trace-out PATH        write a Chrome trace-event JSON (open at\n"
      "                          https://ui.perfetto.dev)\n"
      "  --sample-interval N     snapshot the registry every N cycles\n"
      "  --sample-out PATH       time-series destination; .json for JSON,\n"
      "                          anything else for CSV (requires\n"
      "                          --sample-interval)\n"
      "\n"
      "profile flags (run|sim|prof, plus fleet's --profile-out/--top):\n"
      "  --profile-out PATH      write the deterministic JSON profile\n"
      "  --flame-out PATH        write a collapsed-stack flamegraph file\n"
      "                          (feed to flamegraph.pl / speedscope)\n"
      "  --top N                 hot blocks listed in reports (default 10)\n"
      "\n"
      "Any output PATH above may be `-` to stream to stdout.\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    validate_flags(cmd, args);
    // With a payload streaming to stdout, human-readable reports move to
    // stderr so pipelines stay clean.
    for (const std::string* out :
         {&args.stats_json, &args.trace_out, &args.sample_out,
          &args.profile_out, &args.flame_out}) {
      if (*out == "-") g_report = stderr;
    }
    if (cmd == "asm") return cmd_asm(args);
    if (cmd == "disasm") return cmd_disasm(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "randomize") return cmd_randomize(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "sim") return cmd_sim(args);
    if (cmd == "scan") return cmd_scan(args);
    if (cmd == "workload") return cmd_workload(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "cfg") return cmd_cfg(args);
    if (cmd == "entropy") return cmd_entropy(args);
    if (cmd == "fleet") return cmd_fleet(args);
    if (cmd == "prof") return cmd_prof(args);
    if (cmd == "faultcamp") return cmd_faultcamp(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcfr %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
