// Memory-hierarchy composition tests: latency stacking, prefetcher flow,
// L2 pressure attribution, and the DRC table-walk path.
#include <gtest/gtest.h>

#include "cache/memhier.hpp"
#include "core/drc.hpp"
#include "core/ret_bitmap.hpp"
#include "core/translation.hpp"

namespace vcfr::cache {
namespace {

MemHierConfig quiet_config() {
  MemHierConfig c;
  c.dram.t_refi = 0;
  c.itlb.miss_penalty = 0;
  c.dtlb.miss_penalty = 0;
  return c;
}

TEST(MemHierTest, IfetchLatencyStacksThroughLevels) {
  MemHierConfig c = quiet_config();
  MemHier m(c);
  const auto miss = m.ifetch(0x1000, 0);
  EXPECT_FALSE(miss.l1_hit);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_GT(miss.latency, c.il1.hit_latency + c.l2.hit_latency);
  const auto hit = m.ifetch(0x1000, 100);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_EQ(hit.latency, c.il1.hit_latency);
}

TEST(MemHierTest, NextLinePrefetchMakesSequentialFetchHit) {
  MemHier m(quiet_config());
  (void)m.ifetch(0x1000, 0);  // prefetches 0x1040
  EXPECT_GE(m.prefetch_stats().issued, 1u);
  const auto next = m.ifetch(0x1040, 10);
  EXPECT_TRUE(next.l1_hit) << "next line must have been prefetched";
  EXPECT_EQ(m.il1().stats().prefetch_hits, 1u);
}

TEST(MemHierTest, PrefetchCanBeDisabled) {
  MemHierConfig c = quiet_config();
  c.iprefetch.enabled = false;
  MemHier m(c);
  (void)m.ifetch(0x1000, 0);
  EXPECT_EQ(m.prefetch_stats().issued, 0u);
  EXPECT_FALSE(m.ifetch(0x1040, 10).l1_hit);
}

TEST(MemHierTest, L2PressureAttributesSources) {
  MemHier m(quiet_config());
  (void)m.ifetch(0x1000, 0);
  (void)m.dread(0x2000, 0);
  (void)m.table_read(0x60000000, 0);
  const auto& p = m.l2_pressure();
  EXPECT_EQ(p.reads_from_il1, 1u);
  EXPECT_EQ(p.reads_from_il1_prefetch, 1u);
  EXPECT_EQ(p.reads_from_dl1, 1u);
  EXPECT_EQ(p.reads_from_drc, 1u);
  EXPECT_EQ(p.total_reads(), 4u);
}

TEST(MemHierTest, SecondTableReadHitsInL2) {
  MemHierConfig c = quiet_config();
  MemHier m(c);
  const auto first = m.table_read(0x60000000, 0);
  EXPECT_FALSE(first.l2_hit);
  const auto second = m.table_read(0x60000000, 100);
  EXPECT_TRUE(second.l2_hit);
  EXPECT_EQ(second.latency, c.l2.hit_latency);
}

TEST(MemHierTest, StoresDoNotStallButFillCaches) {
  MemHierConfig c = quiet_config();
  MemHier m(c);
  const auto w = m.dwrite(0x3000, 0);
  EXPECT_EQ(w.latency, 0u);
  EXPECT_FALSE(w.l1_hit);
  const auto r = m.dread(0x3000, 10);
  EXPECT_TRUE(r.l1_hit);
}

TEST(MemHierTest, DirtyL1EvictionsReachL2) {
  MemHierConfig c = quiet_config();
  c.dl1 = {.name = "DL1", .size_bytes = 128, .assoc = 1, .line_bytes = 64,
           .hit_latency = 2};
  MemHier m(c);
  (void)m.dwrite(0x0000, 0);       // dirty line, set 0
  (void)m.dread(0x0080, 10);       // evicts dirty 0x0000 into L2
  EXPECT_EQ(m.dl1().stats().writebacks, 1u);
  // The written line now lives in L2: reading it back misses DL1, hits L2.
  const auto r = m.dread(0x0000, 100);
  EXPECT_FALSE(r.l1_hit);
  EXPECT_TRUE(r.l2_hit);
}

}  // namespace
}  // namespace vcfr::cache

namespace vcfr::core {
namespace {

TEST(DrcTest, DirectMappedLookupInsertAndTags) {
  Drc drc({.entries = 64, .assoc = 1, .hit_latency = 1});
  EXPECT_FALSE(drc.lookup(0x40000010, true).has_value());
  drc.insert(0x40000010, true, {.translation = 0x1004, .randomized_tag = true});
  const auto hit = drc.lookup(0x40000010, true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->translation, 0x1004u);
  EXPECT_TRUE(hit->randomized_tag);
  EXPECT_EQ(drc.stats().lookups, 2u);
  EXPECT_EQ(drc.stats().hits, 1u);
  EXPECT_EQ(drc.stats().misses, 1u);
}

TEST(DrcTest, TypeBitSeparatesRandAndDerandEntries) {
  Drc drc({.entries = 64, .assoc = 2, .hit_latency = 1});
  drc.insert(0x1000, false, {.translation = 0x40000000, .randomized_tag = true});
  EXPECT_FALSE(drc.lookup(0x1000, true).has_value())
      << "a rand entry must not satisfy a derand lookup";
  EXPECT_TRUE(drc.lookup(0x1000, false).has_value());
}

TEST(DrcTest, ConflictEvictionInDirectMappedMode) {
  Drc drc({.entries = 4, .assoc = 1, .hit_latency = 1});
  // Insert two keys that collide (same set after hashing). Brute-force a
  // colliding pair.
  uint32_t a = 0x1000, b = 0;
  for (uint32_t cand = 0x1001; cand < 0x20000; ++cand) {
    Drc probe({.entries = 4, .assoc = 1, .hit_latency = 1});
    probe.insert(a, true, {});
    probe.insert(cand, true, {});
    if (!probe.contains(a, true)) {
      b = cand;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  drc.insert(a, true, {});
  drc.insert(b, true, {});
  EXPECT_FALSE(drc.contains(a, true));
  EXPECT_TRUE(drc.contains(b, true));
}

TEST(DrcTest, RejectsBadGeometry) {
  EXPECT_THROW(Drc({.entries = 0, .assoc = 1, .hit_latency = 1}),
               std::invalid_argument);
  EXPECT_THROW(Drc({.entries = 6, .assoc = 4, .hit_latency = 1}),
               std::invalid_argument);
}

TEST(TranslationWalkerTest, WalksThroughL2AndMarksPagesInvisible) {
  binary::TranslationTables tables;
  tables.derand[0x40000040] = 0x1010;
  tables.rand[0x1010] = 0x40000040;
  tables.table_base = 0x60000000;
  tables.table_bytes = 1024;

  cache::MemHierConfig mc;
  mc.dram.t_refi = 0;
  cache::MemHier mem(mc);
  TranslationWalker walker(tables, mem);

  EXPECT_FALSE(mem.dtlb().user_visible(0x60000000));

  const WalkResult w1 = walker.walk(0x40000040, true, 0);
  EXPECT_EQ(w1.value.translation, 0x1010u);
  EXPECT_TRUE(w1.value.randomized_tag);
  EXPECT_GT(w1.latency, 0u);

  const WalkResult w2 = walker.walk(0x1010, false, 100);
  EXPECT_EQ(w2.value.translation, 0x40000040u);

  // Identity translation for an un-randomized address, tag clear.
  const WalkResult w3 = walker.walk(0x2222, true, 200);
  EXPECT_EQ(w3.value.translation, 0x2222u);
  EXPECT_FALSE(w3.value.randomized_tag);
  EXPECT_EQ(walker.walks(), 3u);
}

TEST(RetBitmapTest, CachesRecentStackRegions) {
  cache::MemHierConfig mc;
  mc.dram.t_refi = 0;
  cache::MemHier mem(mc);
  RetBitmapCache bm({.entries = 2, .line_cover = 2048,
                     .store_base = 0x68000000, .store_bytes = 65536},
                    mem);
  const uint32_t sp = 0x7ffe0100;  // not at a bitmap-region boundary
  EXPECT_GT(bm.access(sp, 0), 0u);       // cold miss
  EXPECT_EQ(bm.access(sp - 4, 10), 0u);  // same region
  (void)bm.access(sp - 4096, 20);        // second region
  (void)bm.access(sp - 8192, 30);        // evicts the first
  EXPECT_GT(bm.access(sp, 40), 0u);
  EXPECT_EQ(bm.stats().accesses, 5u);
  EXPECT_EQ(bm.stats().misses, 4u);
}

}  // namespace
}  // namespace vcfr::core
