// Unit and invariant tests for the cache, TLB, and prefetcher models.
#include <gtest/gtest.h>

#include <random>

#include "cache/cache.hpp"
#include "cache/tlb.hpp"

namespace vcfr::cache {
namespace {

CacheConfig small_cache() {
  return {.name = "t", .size_bytes = 256, .assoc = 2, .line_bytes = 64,
          .hit_latency = 2};
}

TEST(CacheTest, RejectsBadGeometry) {
  CacheConfig c = small_cache();
  c.line_bytes = 48;
  EXPECT_THROW(Cache{c}, std::invalid_argument);
  c = small_cache();
  c.assoc = 0;
  EXPECT_THROW(Cache{c}, std::invalid_argument);
  c = small_cache();
  c.size_bytes = 192;  // 3 sets
  EXPECT_THROW(Cache{c}, std::invalid_argument);
}

TEST(CacheTest, HitAfterMiss) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1000, false).hit);
  EXPECT_TRUE(c.access(0x1030, false).hit);  // same line
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheTest, LruEviction) {
  // 2 sets x 2 ways of 64B lines. Lines mapping to set 0: 0x000, 0x080, ...
  Cache c(small_cache());
  ASSERT_EQ(c.num_sets(), 2u);
  EXPECT_FALSE(c.access(0x000, false).hit);
  EXPECT_FALSE(c.access(0x080, false).hit);
  EXPECT_TRUE(c.access(0x000, false).hit);  // refresh line 0
  const auto out = c.access(0x100, false);  // evicts 0x080 (LRU)
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.evicted_valid);
  EXPECT_EQ(out.evicted_line_addr, 0x080u);
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x080));
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  Cache c(small_cache());
  (void)c.access(0x000, true);  // dirty
  (void)c.access(0x080, false);
  const auto out = c.access(0x100, false);
  EXPECT_TRUE(out.evicted_dirty);
  EXPECT_EQ(out.evicted_line_addr, 0x000u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(CacheTest, PrefetchAccounting) {
  Cache c(small_cache());
  (void)c.fill_prefetch(0x000);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  EXPECT_TRUE(c.access(0x000, false).hit);
  EXPECT_EQ(c.stats().prefetch_hits, 1u);
  // A prefetched line that is evicted before use counts as useless.
  (void)c.fill_prefetch(0x080);
  (void)c.access(0x100, false);
  (void)c.access(0x180, false);  // set 0 full of demand lines now
  EXPECT_EQ(c.stats().prefetch_evicted_unused, 1u);
  EXPECT_GT(c.stats().prefetch_useless_rate(), 0.0);
}

TEST(CacheTest, ContainsDoesNotPerturbState) {
  Cache c(small_cache());
  (void)c.access(0x000, false);
  const auto before = c.stats().accesses;
  EXPECT_TRUE(c.contains(0x000));
  EXPECT_FALSE(c.contains(0x040));
  EXPECT_EQ(c.stats().accesses, before);
}

// Property: a direct-mapped cache of N lines can hold any N consecutive
// distinct lines with exactly one miss each (no conflict among them).
TEST(CacheTest, SequentialLinesFitExactly) {
  Cache c({.name = "dm", .size_bytes = 4096, .assoc = 1, .line_bytes = 64,
           .hit_latency = 1});
  for (uint32_t i = 0; i < 64; ++i) (void)c.access(i * 64, false);
  EXPECT_EQ(c.stats().misses, 64u);
  for (uint32_t i = 0; i < 64; ++i) (void)c.access(i * 64, false);
  EXPECT_EQ(c.stats().misses, 64u) << "second pass must hit entirely";
}

TEST(TlbTest, MissThenHit) {
  Tlb tlb({.entries = 4, .page_bits = 12, .miss_penalty = 20});
  EXPECT_EQ(tlb.access(0x1000), 20u);
  EXPECT_EQ(tlb.access(0x1fff), 0u);  // same page
  EXPECT_EQ(tlb.access(0x2000), 20u);
  EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(TlbTest, LruReplacementAcrossCapacity) {
  Tlb tlb({.entries = 2, .page_bits = 12, .miss_penalty = 10});
  (void)tlb.access(0x1000);
  (void)tlb.access(0x2000);
  (void)tlb.access(0x1000);          // refresh page 1
  EXPECT_EQ(tlb.access(0x3000), 10u);  // evicts page 2
  EXPECT_EQ(tlb.access(0x1000), 0u);
  EXPECT_EQ(tlb.access(0x2000), 10u);
}

TEST(TlbTest, VisibilityBitProtectsTablePages) {
  Tlb tlb({});
  tlb.set_invisible(0x60000000, 0x2000);
  EXPECT_FALSE(tlb.user_visible(0x60000000));
  EXPECT_FALSE(tlb.user_visible(0x60001fff));
  EXPECT_TRUE(tlb.user_visible(0x60002000));
  EXPECT_TRUE(tlb.check_user_access(0x50000000));
  EXPECT_FALSE(tlb.check_user_access(0x60000800));
  EXPECT_EQ(tlb.stats().visibility_faults, 1u);
}

// Property: random access streams keep hits + misses == accesses and the
// working set never exceeds capacity.
class CacheRandomProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheRandomProperty, CountersStayConsistent) {
  std::mt19937 rng(GetParam());
  Cache c({.name = "p", .size_bytes = 2048, .assoc = 4, .line_bytes = 32,
           .hit_latency = 1});
  for (int i = 0; i < 20000; ++i) {
    (void)c.access((rng() % 4096) * 32, rng() % 4 == 0);
  }
  const auto& s = c.stats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_LE(s.writebacks, s.misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheRandomProperty,
                         ::testing::Values(1u, 7u, 99u));

}  // namespace
}  // namespace vcfr::cache
