// Pipeline fuzzing: generate random *structured* VX programs (bounded
// loops, DAG-shaped call graphs, branches, memory ops, indirect calls) —
// guaranteed to terminate — and require semantic equivalence of the
// original, naive-ILR, and VCFR images across randomization seeds, with
// the randomized-tag protection enforced. This property-checks the whole
// CFG/analysis/randomizer/emulator stack far beyond the hand-written
// workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>
#include <string>

#include "emu/emulator.hpp"
#include "fuzz_program.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr {
namespace {

class FuzzEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzEquivalence, AllLayoutsAgreeAcrossSeeds) {
  ProgramFuzzer fuzzer(GetParam());
  const std::string src = fuzzer.generate();
  binary::Image original;
  ASSERT_NO_THROW(original = isa::assemble(src)) << src;

  emu::RunLimits limits;
  limits.max_instructions = 5'000'000;
  const auto base = emu::run_image(original, limits);
  ASSERT_TRUE(base.halted) << "fuzz program must terminate: " << base.error
                           << "\n" << src;

  for (uint64_t seed : {1ull, 42ull, 31337ull}) {
    rewriter::RandomizeOptions opts;
    opts.seed = seed;
    const auto rr = rewriter::randomize(original, opts);

    const auto naive = emu::run_image(rr.naive, limits);
    ASSERT_TRUE(naive.halted) << naive.error;
    EXPECT_EQ(naive.output, base.output) << "naive seed " << seed;
    EXPECT_EQ(naive.stats.instructions, base.stats.instructions);

    emu::RunLimits enforce = limits;
    enforce.enforce_tags = true;
    const auto vcfr = emu::run_image(rr.vcfr, enforce);
    ASSERT_TRUE(vcfr.halted) << vcfr.error;
    EXPECT_EQ(vcfr.output, base.output) << "vcfr seed " << seed;
    EXPECT_EQ(vcfr.stats.tag_violations, 0u);
  }
}

TEST_P(FuzzEquivalence, SoftwareReturnOptionAlsoAgrees) {
  ProgramFuzzer fuzzer(GetParam() ^ 0x77777777u);
  const std::string src = fuzzer.generate();
  const auto original = isa::assemble(src);
  emu::RunLimits limits;
  limits.max_instructions = 5'000'000;
  const auto base = emu::run_image(original, limits);
  ASSERT_TRUE(base.halted) << base.error;

  rewriter::RandomizeOptions opts;
  opts.seed = 5;
  opts.return_option = rewriter::ReturnOption::kSoftwareRewrite;
  const auto rr = rewriter::randomize(original, opts);
  emu::RunLimits enforce = limits;
  enforce.enforce_tags = true;
  const auto vcfr = emu::run_image(rr.vcfr, enforce);
  ASSERT_TRUE(vcfr.halted) << vcfr.error;
  EXPECT_EQ(vcfr.output, base.output);
}

TEST_P(FuzzEquivalence, PageConfinedAlsoAgrees) {
  ProgramFuzzer fuzzer(GetParam() ^ 0x12341234u);
  const auto original = isa::assemble(fuzzer.generate());
  emu::RunLimits limits;
  limits.max_instructions = 5'000'000;
  const auto base = emu::run_image(original, limits);
  ASSERT_TRUE(base.halted) << base.error;

  rewriter::RandomizeOptions opts;
  opts.seed = 6;
  opts.placement = rewriter::PlacementPolicy::kPageConfined;
  const auto rr = rewriter::randomize(original, opts);
  const auto naive = emu::run_image(rr.naive, limits);
  ASSERT_TRUE(naive.halted) << naive.error;
  EXPECT_EQ(naive.output, base.output);
}

INSTANTIATE_TEST_SUITE_P(Programs, FuzzEquivalence,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace vcfr
