// Workload-suite tests: every synthetic SPEC stand-in must run to
// completion deterministically, and — the central property — behave
// identically under naive-ILR and VCFR randomization for arbitrary seeds.
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::workloads {
namespace {

emu::RunLimits limits() {
  emu::RunLimits l;
  l.max_instructions = 20'000'000;
  return l;
}

class WorkloadRuns : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRuns, CompletesAndIsDeterministic) {
  const auto img = make(GetParam(), /*scale=*/0);
  const auto r1 = emu::run_image(img, limits());
  ASSERT_TRUE(r1.halted) << GetParam() << ": " << r1.error;
  ASSERT_FALSE(r1.output.empty());
  const auto r2 = emu::run_image(img, limits());
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
}

TEST_P(WorkloadRuns, SurvivesRandomizationBothLayouts) {
  const auto img = make(GetParam(), /*scale=*/0);
  const auto base = emu::run_image(img, limits());
  ASSERT_TRUE(base.halted) << base.error;

  for (uint64_t seed : {1ull, 1337ull}) {
    rewriter::RandomizeOptions opts;
    opts.seed = seed;
    const auto rr = rewriter::randomize(img, opts);

    const auto naive = emu::run_image(rr.naive, limits());
    EXPECT_TRUE(naive.halted) << GetParam() << " naive seed " << seed << ": "
                              << naive.error;
    EXPECT_EQ(naive.output, base.output) << GetParam() << " naive " << seed;

    const auto vcfr = emu::run_image(rr.vcfr, limits());
    EXPECT_TRUE(vcfr.halted) << GetParam() << " vcfr seed " << seed << ": "
                             << vcfr.error;
    EXPECT_EQ(vcfr.output, base.output) << GetParam() << " vcfr " << seed;
    EXPECT_EQ(vcfr.stats.tag_violations, 0u) << GetParam();
  }
}

TEST_P(WorkloadRuns, RunsCleanUnderTagEnforcement) {
  // The hardware's randomized-tag prohibition (§IV-A) must never trip on
  // legitimate executions: the analyses put every address that legitimate
  // control flow can reach in original space into the failover set.
  const auto img = make(GetParam(), /*scale=*/0);
  const auto rr = rewriter::randomize(img, {});
  auto l = limits();
  l.enforce_tags = true;
  const auto r = emu::run_image(rr.vcfr, l);
  EXPECT_TRUE(r.halted) << GetParam() << ": " << r.error;
}

INSTANTIATE_TEST_SUITE_P(AllApps, WorkloadRuns,
                         ::testing::Values("bzip2", "gcc", "mcf", "hmmer",
                                           "sjeng", "libquantum", "h264ref",
                                           "lbm", "xalan", "namd", "soplex",
                                           "memcpy", "python"));

TEST(SuiteTest, NameListsAreConsistent) {
  EXPECT_EQ(spec_names().size(), 11u);
  EXPECT_EQ(fig2_names().size(), 6u);
  for (const auto& n : spec_names()) EXPECT_NO_THROW((void)make(n, 0));
  EXPECT_THROW((void)make("notaworkload", 0), std::invalid_argument);
}

TEST(SuiteTest, ScaleGrowsWork) {
  const auto small = emu::run_image(make("hmmer", 0), limits());
  const auto big = emu::run_image(make("hmmer", 1), limits());
  ASSERT_TRUE(small.halted);
  ASSERT_TRUE(big.halted);
  EXPECT_GT(big.stats.instructions, 4 * small.stats.instructions);
}

TEST(SuiteTest, StaticCharactersMatchTableII) {
  // Relative shape of Table II: xalan has by far the most indirect calls;
  // gcc has the most direct transfers; both have large code.
  auto stats = [](const char* name) {
    const auto img = make(name, 1);
    const auto cfg = rewriter::build_cfg(img);
    return rewriter::static_stats(img, cfg);
  };
  const auto xalan = stats("xalan");
  const auto gcc = stats("gcc");
  const auto mcf = stats("mcf");
  EXPECT_GT(xalan.indirect_calls, gcc.indirect_calls);
  EXPECT_GT(xalan.indirect_calls, 10u * std::max<uint64_t>(1, mcf.indirect_calls));
  EXPECT_GT(gcc.direct_transfers, mcf.direct_transfers);
  EXPECT_GT(gcc.instructions, 2000u);
  EXPECT_GT(xalan.instructions, 2000u);
  // gcc carries the largest code body; mcf's core is small (its bulk is
  // the shared warm/cold bank all apps carry).
  EXPECT_GT(gcc.instructions, mcf.instructions);
}

TEST(SuiteTest, XalanComputedClusterPopulatesFailoverSet) {
  const auto img = make("xalan", 0);
  const auto rr = rewriter::randomize(img, {});
  EXPECT_GT(rr.vcfr.tables.unrandomized.size(), 8u);
  // But the failover set stays a small fraction of the program.
  const auto cfg = rewriter::build_cfg(img);
  EXPECT_LT(rr.vcfr.tables.unrandomized.size(), cfg.instrs.size() / 5);
}

TEST(SuiteTest, GccExercisesReturnAddressBitmap) {
  const auto img = make("gcc", 0);
  rewriter::RandomizeOptions opts;
  opts.return_policy = rewriter::ReturnPolicy::kArchitectural;
  const auto rr = rewriter::randomize(img, opts);
  const auto r = emu::run_image(rr.vcfr, limits());
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_GT(r.stats.bitmap_autoderand_loads, 0u)
      << "the PIC probe must hit the §IV-C auto-de-randomization path";
}

}  // namespace
}  // namespace vcfr::workloads
