// Hot-path safety net: the decoded-instruction cache, the flat translation
// tables, the Memory fast paths, and the kernel's persistent worker pool
// are host-side optimizations — every architectural result must be
// bit-identical with them exercised or bypassed. These tests pin that.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "binary/flat_map.hpp"
#include "emu/emulator.hpp"
#include "emu/rerandomize.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "os/worker_pool.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr {
namespace {

emu::RunResult run_with_cache(const binary::Image& image, bool cache_on,
                              emu::DecodeCacheStats* stats = nullptr) {
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emulator(image, mem);
  emulator.set_decode_cache(cache_on);
  emu::RunResult r = emulator.run();
  if (stats != nullptr) *stats = emulator.decode_cache_stats();
  return r;
}

void expect_identical(const emu::RunResult& on, const emu::RunResult& off,
                      const std::string& what) {
  EXPECT_EQ(on.halted, off.halted) << what;
  EXPECT_EQ(on.error, off.error) << what;
  EXPECT_EQ(on.output, off.output) << what;
  EXPECT_EQ(on.mem_checksum, off.mem_checksum) << what;
  EXPECT_EQ(on.stats.instructions, off.stats.instructions) << what;
  EXPECT_EQ(on.stats.derand_events, off.stats.derand_events) << what;
  EXPECT_EQ(on.stats.rand_events, off.stats.rand_events) << what;
  EXPECT_EQ(on.final_state.pc, off.final_state.pc) << what;
  EXPECT_EQ(on.final_state.regs, off.final_state.regs) << what;
  EXPECT_EQ(on.final_state.zf, off.final_state.zf) << what;
  EXPECT_EQ(on.final_state.nf, off.final_state.nf) << what;
  EXPECT_EQ(on.final_state.cf, off.final_state.cf) << what;
  EXPECT_EQ(on.final_state.vf, off.final_state.vf) << what;
}

// Every suite workload, all three layouts: cached and uncached runs must
// produce the same outputs, final register file, and memory image.
TEST(DecodeCacheTest, DifferentialAcrossSuiteAndLayouts) {
  for (const std::string& name : workloads::spec_names()) {
    const binary::Image original = workloads::make(name, 0);
    rewriter::RandomizeOptions opts;
    opts.seed = 0x9000 + original.code.size();
    const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);

    for (const binary::Image* image : {&original, &rr.naive, &rr.vcfr}) {
      emu::DecodeCacheStats stats;
      const emu::RunResult on = run_with_cache(*image, true, &stats);
      const emu::RunResult off = run_with_cache(*image, false);
      const std::string what =
          name + " layout " + std::to_string(static_cast<int>(image->layout));
      expect_identical(on, off, what);
      ASSERT_TRUE(on.halted) << what << ": " << on.error;
      // A real run hits the cache almost always (loops), and hits + misses
      // must account for every instruction executed.
      EXPECT_EQ(stats.hits + stats.misses, on.stats.instructions) << what;
      EXPECT_GT(stats.hits, stats.misses) << what;
    }
  }
}

constexpr const char* kFactorial = R"(
  .name victim
  .entry main
  .func main
  main:
    mov r1, 8
    call fact
    out r2
    mov r1, 6
    call fact
    out r2
    halt
  .func fact
  fact:
    cmp r1, 1
    jgt rec
    mov r2, 1
    ret
  rec:
    push r1
    sub r1, 1
    call fact
    pop r1
    mul r2, r1
    ret
)";

// Live re-randomization mid-recursion: the swap rewrites code bytes and
// tables under a *new* emulator; cached and uncached sessions must agree.
TEST(DecodeCacheTest, LiveRerandomizeDifferential) {
  const auto golden = emu::run_image(isa::assemble(kFactorial));
  ASSERT_TRUE(golden.halted);

  for (const bool cache_on : {true, false}) {
    binary::Memory mem;
    rewriter::RandomizeOptions opts;
    opts.seed = 11;
    // Every epoch's RandomizeResult must outlive the emulator running on
    // it (the emulator references the image in place).
    std::vector<rewriter::RandomizeResult> epochs;
    epochs.reserve(4);
    epochs.push_back(rewriter::randomize(isa::assemble(kFactorial), opts));
    binary::load(epochs.back().vcfr, mem);
    auto emu_ptr = std::make_unique<emu::Emulator>(epochs.back().vcfr, mem);
    emu_ptr->set_decode_cache(cache_on);

    // Three epochs, swapping every 15 instructions.
    for (int epoch = 0; epoch < 3; ++epoch) {
      for (int i = 0; i < 15; ++i) ASSERT_TRUE(emu_ptr->step());
      rewriter::RandomizeOptions fresh;
      fresh.seed = 0xabc0 + epoch;
      epochs.push_back(rewriter::randomize(isa::assemble(kFactorial), fresh));
      emu_ptr = emu::rerandomize_live(*emu_ptr, mem,
                                      epochs[epochs.size() - 2],
                                      epochs.back(), nullptr);
      emu_ptr->set_decode_cache(cache_on);
    }
    emu::RunLimits limits;
    limits.max_instructions = 100000;
    const auto r = emu_ptr->run(limits);
    EXPECT_TRUE(r.halted) << r.error;
    EXPECT_EQ(r.output, golden.output)
        << "cache " << (cache_on ? "on" : "off");
  }
}

// Self-modifying code: a write landing in the watched code range must
// invalidate the cached decode, not execute the stale instruction.
TEST(DecodeCacheTest, CodeWriteInvalidatesCachedDecode) {
  // Two variants of the same program; the only difference is the constant
  // in the loop body. Patching the bytes of variant A into variant B's
  // image mid-run must change the second loop iteration's output.
  const auto make_src = [](int value) {
    return std::string(".entry main\n"
                       "main:\n"
                       "  mov r3, 2\n"
                       "loop:\n"
                       "  mov r2, ") +
           std::to_string(value) +
           "\n"
           "  out r2\n"
           "  sub r3, 1\n"
           "  cmp r3, 0\n"
           "  jgt loop\n"
           "  halt\n";
  };
  const binary::Image before = isa::assemble(make_src(5));
  const binary::Image after = isa::assemble(make_src(9));
  ASSERT_EQ(before.code.size(), after.code.size());

  binary::Memory mem;
  binary::load(before, mem);
  emu::Emulator emulator(before, mem);

  // First iteration: runs the unpatched body (out 5).
  while (emulator.output().empty()) ASSERT_TRUE(emulator.step());
  const uint64_t gen_before = mem.code_version();

  // Patch every differing code byte in place (what a store to the code
  // segment does, without needing an ISA-level store-to-code idiom).
  for (size_t i = 0; i < before.code.size(); ++i) {
    if (before.code[i] != after.code[i]) {
      mem.write8(before.code_base + static_cast<uint32_t>(i), after.code[i]);
    }
  }
  EXPECT_GT(mem.code_version(), gen_before)
      << "code writes must bump the generation";

  const auto r = emulator.run();
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.output, (std::vector<uint32_t>{5, 9}));
  EXPECT_GT(emulator.decode_cache_stats().invalidations, 0u)
      << "the patched loop body was cached and must have been re-decoded";
}

TEST(MemoryTest, ReadBlockCrossesPageBoundary) {
  binary::Memory mem;
  const uint32_t page = binary::Memory::kPageSize;
  const uint32_t start = 3 * page - 3;  // 3 bytes before a boundary
  for (uint32_t i = 0; i < 8; ++i) {
    mem.write8(start + i, static_cast<uint8_t>(0xa0 + i));
  }
  uint8_t buf[8] = {};
  mem.read_block(start, buf, 8);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(buf[i], 0xa0 + i) << i;
  }

  // A block overlapping an unallocated page reads zeros there.
  uint8_t buf2[16] = {};
  mem.read_block(start, buf2, 16);
  for (uint32_t i = 8; i < 16; ++i) EXPECT_EQ(buf2[i], 0u) << i;

  // Straddling 32-bit accesses agree with byte-wise assembly.
  mem.write32(4 * page - 2, 0xdeadbeef);
  EXPECT_EQ(mem.read32(4 * page - 2), 0xdeadbeefu);
  EXPECT_EQ(mem.read8(4 * page - 2), 0xefu);
  EXPECT_EQ(mem.read8(4 * page + 1), 0xdeu);
}

TEST(MemoryTest, PageMemoSurvivesInterleavedStreams) {
  // Alternate between two pages and between reads/writes: the per-stream
  // memos must never serve bytes from the wrong page.
  binary::Memory mem;
  const uint32_t a = 0x1000, b = 0x200000;
  for (int i = 0; i < 64; ++i) {
    mem.write8(a + i, static_cast<uint8_t>(i));
    mem.write8(b + i, static_cast<uint8_t>(0x80 + i));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(mem.read8(a + i), i);
    EXPECT_EQ(mem.read8(b + i), 0x80 + i);
  }
}

TEST(FlatMapTest, BasicOpsGrowthAndIteration) {
  binary::FlatMap32 m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.lookup(42), nullptr);

  // Push well past the initial capacity to force several rehashes.
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(m.emplace(i * 7919, i));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (uint32_t i = 0; i < 1000; ++i) {
    const uint32_t* v = m.lookup(i * 7919);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  // emplace does not overwrite (unordered_map semantics).
  EXPECT_FALSE(m.emplace(0, 999));
  EXPECT_EQ(*m.lookup(0), 0u);
  // operator[] does.
  m[7919] = 555;
  EXPECT_EQ(*m.lookup(7919), 555u);

  // Iteration visits every live entry exactly once.
  size_t seen = 0;
  uint64_t key_sum = 0;
  for (const auto& [k, v] : m) {
    ++seen;
    key_sum += k;
  }
  EXPECT_EQ(seen, m.size());
  uint64_t expect_sum = 0;
  for (uint32_t i = 0; i < 1000; ++i) expect_sum += i * 7919;
  EXPECT_EQ(key_sum, expect_sum);

  // find/end and equality.
  EXPECT_NE(m.find(7919), m.end());
  EXPECT_EQ(m.find(123456789), m.end());
  binary::FlatMap32 m2 = m;
  EXPECT_EQ(m, m2);
  m2[7919] = 556;
  EXPECT_FALSE(m == m2);
}

TEST(FlatMapTest, CollidingKeysProbeCorrectly) {
  // Saturate a small table with keys, then verify misses terminate and
  // hits resolve even under heavy probing.
  binary::FlatMap32 m;
  for (uint32_t i = 0; i < 24; ++i) m.emplace(i, i + 100);
  for (uint32_t i = 0; i < 24; ++i) {
    ASSERT_NE(m.lookup(i), nullptr);
    EXPECT_EQ(*m.lookup(i), i + 100);
  }
  for (uint32_t i = 24; i < 200; ++i) EXPECT_EQ(m.lookup(i), nullptr);
}

TEST(FlatSetTest, InsertContains) {
  binary::FlatSet32 s;
  for (uint32_t i = 0; i < 500; ++i) EXPECT_TRUE(s.insert(i * 31 + 7));
  EXPECT_FALSE(s.insert(7));
  EXPECT_EQ(s.size(), 500u);
  for (uint32_t i = 0; i < 500; ++i) EXPECT_TRUE(s.contains(i * 31 + 7));
  EXPECT_FALSE(s.contains(8));
}

TEST(WorkerPoolTest, PersistentThreadsRunEveryTask) {
  os::WorkerPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);

  // Work-stealing pool: WHICH host thread runs a task varies with host
  // scheduling (that's the point — an idle participant takes a stalled
  // one's work), but every task runs exactly once per round and run()
  // does not return before all of them completed.
  std::atomic<uint64_t> runs{0};
  for (int round = 0; round < 200; ++round) {
    std::array<std::atomic<uint32_t>, 4> per_task{};
    pool.run(4, [&](uint32_t task) {
      per_task[task].fetch_add(1, std::memory_order_relaxed);
      runs.fetch_add(1, std::memory_order_relaxed);
    });
    for (uint32_t t = 0; t < 4; ++t) {
      EXPECT_EQ(per_task[t].load(), 1u) << "task " << t << " round " << round;
    }
  }
  EXPECT_EQ(runs.load(), 4u * 200u);
  EXPECT_EQ(pool.rounds(), 200u);

  // Single-task dispatches run inline on the caller and are not pool
  // rounds.
  pool.run(1, [&](uint32_t task) {
    EXPECT_EQ(task, 0u);
    EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
  });
  EXPECT_EQ(pool.rounds(), 200u);
}

TEST(WorkerPoolTest, FewerTasksThanWorkers) {
  os::WorkerPool pool(7);
  std::atomic<uint64_t> runs{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(3, [&](uint32_t) { runs.fetch_add(1); });
  }
  EXPECT_EQ(runs.load(), 150u);
}

TEST(WorkerPoolTest, MoreTasksThanParticipants) {
  // The old static-assignment pool silently required tasks <= workers + 1;
  // the deque-based pool queues any excess and drains it.
  os::WorkerPool pool(2);
  std::array<std::atomic<uint32_t>, 17> per_task{};
  std::atomic<uint64_t> runs{0};
  for (int round = 0; round < 20; ++round) {
    pool.run(17, [&](uint32_t task) {
      per_task[task].fetch_add(1, std::memory_order_relaxed);
      runs.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(runs.load(), 17u * 20u);
  for (uint32_t t = 0; t < 17; ++t) EXPECT_EQ(per_task[t].load(), 20u);
  EXPECT_EQ(pool.rounds(), 20u);
}

TEST(WorkerPoolTest, StealCounterIsMonotonic) {
  os::WorkerPool pool(3);
  EXPECT_EQ(pool.steals(), 0u);
  uint64_t last = 0;
  for (int round = 0; round < 50; ++round) {
    pool.run(8, [&](uint32_t) {});
    const uint64_t s = pool.steals();
    EXPECT_GE(s, last);
    last = s;
  }
}

TEST(WorkerPoolTest, KernelUsesPoolOnlyWhenMultiCore) {
  os::KernelConfig kc;
  kc.sched.slice_instructions = 500;
  kc.measure_isolated = false;

  kc.cores = 2;
  os::Kernel multi(kc);
  for (uint32_t i = 0; i < 3; ++i) {
    os::ProcessConfig pc;
    pc.workload = i == 0 ? "bzip2" : (i == 1 ? "mcf" : "hmmer");
    pc.scale = 0;
    pc.seed = 40 + i;
    multi.spawn(pc);
  }
  (void)multi.run();
  EXPECT_GT(multi.pool_rounds(), 0u)
      << "multi-core rounds must dispatch through the pool";
  EXPECT_EQ(multi.pool_workers(), 1u);

  kc.cores = 1;
  os::Kernel solo(kc);
  for (uint32_t i = 0; i < 2; ++i) {
    os::ProcessConfig pc;
    pc.workload = i == 0 ? "bzip2" : "hmmer";
    pc.scale = 0;
    pc.seed = 50 + i;
    solo.spawn(pc);
  }
  (void)solo.run();
  EXPECT_EQ(solo.pool_rounds(), 0u) << "single-core runs never need workers";
  EXPECT_EQ(solo.pool_workers(), 0u);
}

}  // namespace
}  // namespace vcfr
