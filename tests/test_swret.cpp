// Tests for the software return-address randomization option (§IV-A
// option 1): `call X` -> `push <randomized return>; jmp X`.
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::rewriter {
namespace {

using binary::Image;
using emu::run_image;

constexpr const char* kCallsProgram = R"(
  .name calls
  .entry main
  .func main
  main:
    mov r1, 4
    call square
    out r1         ; 16
    call square
    out r1         ; 256
    call pic
    out r2
    halt
  .func square
  square:
    mul r1, r1
    ret
  .func pic
  pic:
    ld r2, [sp]    ; touches the return address: not rewritable
    and r2, 0
    add r2, 7
    ret
)";

TEST(SoftwareRewriteTest, RewritesSafeCallsOnly) {
  const Image original = isa::assemble(kCallsProgram);
  SoftwareRewriteStats stats;
  const Image transformed = rewrite_calls_software(original, &stats);
  // Two calls to `square` are rewritable; the call to `pic` is not.
  EXPECT_EQ(stats.calls_rewritten, 2u);
  EXPECT_EQ(stats.code_bytes_after, stats.code_bytes_before + 2 * 5)
      << "each rewrite replaces a 5-byte call with push(5)+jmp(5)";
  EXPECT_GT(stats.expansion_percent(), 0.0);

  size_t pushis = 0, calls = 0;
  for (const auto& e : isa::disassemble(transformed)) {
    if (e.instr.op == isa::Op::kPushI) ++pushis;
    if (e.instr.op == isa::Op::kCall) ++calls;
  }
  EXPECT_EQ(pushis, 2u);
  EXPECT_EQ(calls, 1u);  // only the pic call remains
}

TEST(SoftwareRewriteTest, TransformedImageRunsIdentically) {
  const Image original = isa::assemble(kCallsProgram);
  const Image transformed = rewrite_calls_software(original);
  const auto a = run_image(original);
  const auto b = run_image(transformed);
  ASSERT_TRUE(a.halted);
  ASSERT_TRUE(b.halted) << b.error;
  EXPECT_EQ(a.output, b.output);
  // push+jmp replaces call one-for-two: two extra dynamic instructions per
  // rewritten dynamic call (2 calls executed).
  EXPECT_EQ(b.stats.instructions, a.stats.instructions + 2);
}

TEST(SoftwareRewriteTest, RandomizedImagesStayEquivalent) {
  const Image original = isa::assemble(kCallsProgram);
  const auto base = run_image(original);
  for (uint64_t seed : {3ull, 77ull, 2015ull}) {
    RandomizeOptions opts;
    opts.seed = seed;
    opts.return_option = ReturnOption::kSoftwareRewrite;
    const auto rr = randomize(original, opts);
    EXPECT_EQ(rr.sw_stats.calls_rewritten, 2u);

    const auto naive = run_image(rr.naive);
    EXPECT_TRUE(naive.halted) << naive.error;
    EXPECT_EQ(naive.output, base.output);

    emu::RunLimits limits;
    limits.enforce_tags = true;
    const auto vcfr = run_image(rr.vcfr, limits);
    EXPECT_TRUE(vcfr.halted) << vcfr.error;
    EXPECT_EQ(vcfr.output, base.output);
    EXPECT_EQ(vcfr.stats.tag_violations, 0u);
    // Pure software option: the hardware never pushes a randomized
    // return, so no rand-entry lookups and no bitmap activity.
    EXPECT_EQ(vcfr.stats.rand_events, 0u);
    EXPECT_EQ(vcfr.stats.bitmap_autoderand_loads, 0u);
  }
}

TEST(SoftwareRewriteTest, ReturnsStillRandomizedInTheStack) {
  // The pushed (rewritten) return must be a randomized-space address.
  const Image original = isa::assemble(kCallsProgram);
  RandomizeOptions opts;
  opts.return_option = ReturnOption::kSoftwareRewrite;
  const auto rr = randomize(original, opts);
  size_t randomized_pushes = 0;
  for (const auto& e : isa::disassemble(rr.vcfr)) {
    if (e.instr.op == isa::Op::kPushI &&
        rr.vcfr.tables.is_randomized_addr(e.instr.imm)) {
      ++randomized_pushes;
    }
  }
  EXPECT_EQ(randomized_pushes, 2u);
}

TEST(SoftwareRewriteTest, WorksAcrossTheWholeSuite) {
  for (const auto& name : workloads::spec_names()) {
    const Image original = workloads::make(name, 0);
    const auto base = run_image(original);
    ASSERT_TRUE(base.halted) << name;

    RandomizeOptions opts;
    opts.seed = 11;
    opts.return_option = ReturnOption::kSoftwareRewrite;
    const auto rr = randomize(original, opts);

    emu::RunLimits limits;
    limits.enforce_tags = true;
    const auto vcfr = run_image(rr.vcfr, limits);
    EXPECT_TRUE(vcfr.halted) << name << ": " << vcfr.error;
    EXPECT_EQ(vcfr.output, base.output) << name;
  }
}

TEST(SoftwareRewriteTest, RejectsRandomizedInput) {
  const Image original = isa::assemble(kCallsProgram);
  const auto rr = randomize(original, {});
  EXPECT_THROW((void)rewrite_calls_software(rr.vcfr), std::invalid_argument);
}

}  // namespace
}  // namespace vcfr::rewriter
