// Scale-out invariants (ARCHITECTURE.md §14): the sharded round commit
// and the work-stealing worker pool are host-side reorganizations of the
// same simulated machine, so every observable report must be
// byte-identical to the legacy single-barrier, caller-runs paths. Also
// covers checkpoint/restore: a run resumed from a mid-campaign
// checkpoint must finish with the exact bytes of the uninterrupted run.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "binary/state_io.hpp"
#include "fault/injector.hpp"
#include "os/kernel.hpp"
#include "serve/server.hpp"

namespace vcfr {
namespace {

constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

os::ProcessConfig tenant(const char* workload, uint64_t seed) {
  os::ProcessConfig pc;
  pc.workload = workload;
  pc.scale = 0;
  pc.seed = seed;
  pc.max_instructions = 20'000;
  return pc;
}

os::KernelConfig fleet_config(uint32_t cores, uint32_t commit_shards,
                              uint32_t pool_workers = 0) {
  os::KernelConfig kc;
  kc.cores = cores;
  kc.sched.slice_instructions = 2'000;
  kc.measure_isolated = false;
  kc.shared_l2.commit_shards = commit_shards;
  kc.pool_workers = pool_workers;
  return kc;
}

void spawn_mix(os::Kernel& kernel, uint32_t procs, uint64_t seed,
               bool inject_pid1 = false,
               const os::RerandomizePolicy* rerand = nullptr) {
  const char* mix[] = {"bzip2", "gcc", "mcf", "hmmer"};
  for (uint32_t i = 0; i < procs; ++i) {
    os::ProcessConfig pc = tenant(mix[i % 4], seed ^ (kSeedMix * (i + 1)));
    if (rerand != nullptr) pc.rerandomize = *rerand;
    if (inject_pid1) {
      pc.restart.mode = os::RestartPolicy::Mode::kOnFault;
      pc.restart.backoff_rounds = 2;
      if (i == 1) {
        pc.inject.site = fault::FaultSite::kPayload;
        pc.inject.at_instruction = 5'000;
        pc.inject.seed = 3;
        pc.inject_enabled = true;
      }
    }
    kernel.spawn(pc);
  }
}

std::string fleet_json(uint32_t cores, uint32_t procs, uint64_t seed,
                       uint32_t commit_shards, uint32_t pool_workers = 0,
                       bool inject_pid1 = false) {
  os::Kernel kernel(fleet_config(cores, commit_shards, pool_workers));
  spawn_mix(kernel, procs, seed, inject_pid1);
  return kernel.run().to_json();
}

// ----------------------------------------- sharded-commit differentials --

// The sharded commit (commit_shards > 0) must reproduce the legacy
// single-barrier replay byte-for-byte across seeds, core counts, and
// shard counts (including a non-power-of-two).
TEST(ShardedCommitTest, FleetReportMatchesLegacyAcrossConfigs) {
  for (const uint32_t cores : {2u, 4u}) {
    for (const uint64_t seed : {7ull, 1234ull}) {
      const std::string legacy = fleet_json(cores, 2 * cores, seed, 0);
      for (const uint32_t shards : {1u, 3u, 8u}) {
        EXPECT_EQ(legacy, fleet_json(cores, 2 * cores, seed, shards))
            << "cores=" << cores << " seed=" << seed << " shards=" << shards;
      }
    }
  }
}

// Fault injection + restart exercises the blame/penalty bookkeeping in
// the serial phase; the sharded path must still match.
TEST(ShardedCommitTest, FleetReportMatchesLegacyUnderInjection) {
  const std::string legacy = fleet_json(4, 8, 7, 0, 0, true);
  const std::string sharded = fleet_json(4, 8, 7, 8, 0, true);
  EXPECT_EQ(legacy, sharded);
}

// The full scale-out shape: 64 cores, 128 tenants, sharded vs legacy.
TEST(ShardedCommitTest, SixtyFourCoreFleetMatchesLegacy) {
  EXPECT_EQ(fleet_json(64, 128, 7, 0), fleet_json(64, 128, 7, 8));
}

// Worker-pool sizing is pure host parallelism: any pool size must leave
// the report bytes untouched.
TEST(ShardedCommitTest, PoolWorkerCountDoesNotChangeReport) {
  const std::string one = fleet_json(4, 8, 7, 8, 1);
  for (const uint32_t workers : {2u, 4u}) {
    EXPECT_EQ(one, fleet_json(4, 8, 7, 8, workers)) << workers << " workers";
  }
}

// The serve path drives the same kernel; its report must be equally
// indifferent to commit sharding and pool sizing.
TEST(ShardedCommitTest, ServeReportMatchesLegacy) {
  serve::ServeConfig sc;
  sc.tenants = 8;
  sc.cores = 4;
  sc.duration = 100'000;
  sc.mean_interarrival = 10'000;
  sc.seed = 7;
  sc.commit_shards = 0;
  sc.pool_workers = 1;
  const std::string legacy = serve::run_serve(sc).to_json();
  sc.commit_shards = 8;
  sc.pool_workers = 3;
  EXPECT_EQ(legacy, serve::run_serve(sc).to_json());
}

// ------------------------------------------------- checkpoint / restore --

struct CheckpointRun {
  std::string baseline;     // uninterrupted, no checkpoint armed
  std::string with_write;   // uninterrupted, checkpoint written mid-run
  std::string resumed;      // fresh kernel restored from the checkpoint
  uint64_t writes = 0;
  uint64_t restores = 0;
};

CheckpointRun checkpoint_roundtrip(const std::string& path, bool inject_pid1,
                                   uint32_t restore_pool_workers = 0,
                                   const os::RerandomizePolicy* rerand =
                                       nullptr) {
  CheckpointRun out;
  {
    os::Kernel kernel(fleet_config(4, 8));
    spawn_mix(kernel, 8, 7, inject_pid1, rerand);
    out.baseline = kernel.run().to_json();
  }
  {
    os::Kernel kernel(fleet_config(4, 8));
    spawn_mix(kernel, 8, 7, inject_pid1, rerand);
    kernel.set_checkpoint(8, path);
    out.with_write = kernel.run().to_json();
    out.writes = kernel.checkpoint_writes();
  }
  {
    os::Kernel kernel(fleet_config(4, 8, restore_pool_workers));
    spawn_mix(kernel, 8, 7, inject_pid1, rerand);
    std::ifstream in(path, std::ios::binary);
    kernel.restore(in);
    out.resumed = kernel.run().to_json();
    out.restores = kernel.checkpoint_restores();
  }
  return out;
}

// Resume-equals-uninterrupted: serializing at a round boundary and
// continuing in a fresh kernel reproduces the final report bytes, and
// writing the checkpoint never perturbs the run that wrote it.
TEST(CheckpointRestoreTest, ResumedRunIsBitIdentical) {
  const CheckpointRun r =
      checkpoint_roundtrip(testing::TempDir() + "vcfr_ckpt_plain.bin", false);
  EXPECT_EQ(r.writes, 1u);
  EXPECT_EQ(r.restores, 1u);
  EXPECT_EQ(r.baseline, r.with_write);
  EXPECT_EQ(r.baseline, r.resumed);
}

// Same under injection + restart: the checkpoint carries the corrupted
// live image, pending-restart queue, and containment counters.
TEST(CheckpointRestoreTest, ResumedRunIsBitIdenticalUnderInjection) {
  const CheckpointRun r =
      checkpoint_roundtrip(testing::TempDir() + "vcfr_ckpt_inject.bin", true);
  EXPECT_EQ(r.writes, 1u);
  EXPECT_EQ(r.baseline, r.with_write);
  EXPECT_EQ(r.baseline, r.resumed);
}

// Continuous re-randomization is the hardest checkpoint client: the cut
// can land mid-deferral-streak with alias entries live and a trap-
// scheduled swap pending, and incremental epochs cannot be re-derived
// from the seed alone (the serialized tables are the ground truth). The
// resumed run must still finish bit-identical.
TEST(CheckpointRestoreTest, ResumedRunIsBitIdenticalUnderContinuousRerand) {
  os::RerandomizePolicy rp;
  rp.every_slices = 3;
  rp.rebuild = os::RerandomizePolicy::Rebuild::kIncremental;
  rp.epoch_tags = true;
  rp.on_trap = true;
  rp.max_defer = 2;
  const CheckpointRun r =
      checkpoint_roundtrip(testing::TempDir() + "vcfr_ckpt_rerand.bin",
                           /*inject_pid1=*/true, 0, &rp);
  EXPECT_EQ(r.writes, 1u);
  EXPECT_EQ(r.restores, 1u);
  EXPECT_EQ(r.baseline, r.with_write);
  EXPECT_EQ(r.baseline, r.resumed);
}

// The digest excludes worker-pool sizing, so restoring under a different
// host parallelism is legal and bit-identical.
TEST(CheckpointRestoreTest, RestoreWithDifferentPoolWorkersIsIdentical) {
  const CheckpointRun r = checkpoint_roundtrip(
      testing::TempDir() + "vcfr_ckpt_pool.bin", false, /*pool_workers=*/2);
  EXPECT_EQ(r.baseline, r.resumed);
}

// A checkpoint from a differently-configured fleet must be rejected by
// the configuration digest, not silently resumed into the wrong machine.
TEST(CheckpointRestoreTest, RestoreRejectsMismatchedConfig) {
  const std::string path = testing::TempDir() + "vcfr_ckpt_digest.bin";
  {
    os::Kernel kernel(fleet_config(4, 8));
    spawn_mix(kernel, 8, 7);
    kernel.set_checkpoint(8, path);
    (void)kernel.run();
    ASSERT_EQ(kernel.checkpoint_writes(), 1u);
  }
  os::Kernel other(fleet_config(4, 8));
  spawn_mix(other, 8, /*seed=*/99);  // different tenant seeds -> new digest
  std::ifstream in(path, std::ios::binary);
  EXPECT_THROW(other.restore(in), binary::FormatError);
}

// Truncated streams fail loudly with a typed fault, never a partial load.
TEST(CheckpointRestoreTest, RestoreRejectsTruncatedStream) {
  const std::string path = testing::TempDir() + "vcfr_ckpt_trunc.bin";
  {
    os::Kernel kernel(fleet_config(4, 8));
    spawn_mix(kernel, 8, 7);
    kernel.set_checkpoint(8, path);
    (void)kernel.run();
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  std::istringstream cut(bytes.substr(0, bytes.size() / 2));
  os::Kernel kernel(fleet_config(4, 8));
  spawn_mix(kernel, 8, 7);
  EXPECT_THROW(kernel.restore(cut), binary::FormatError);
}

}  // namespace
}  // namespace vcfr
