// Address-taint telemetry (docs/OBSERVABILITY.md).
//
// The tracker is pure shadow state: switching it on must never change an
// architectural result, a simulated cycle, or an output byte — on any
// workload, any layout, any seed. The planted "leaky" handler pins down
// the detection side: native silent by construction, randomized siblings
// fire the sink with full ret_push/out provenance, and --rerand-on-leak
// turns each firing into a fresh placement for the leaking tenant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "emu/taint.hpp"
#include "rewriter/randomizer.hpp"
#include "serve/server.hpp"
#include "workloads/suite.hpp"
#include "workloads/wl_server.hpp"

namespace vcfr {
namespace {

/// The over-read request: the handler's buffer is 64 bytes with the saved
/// return address directly above it, so echoing 68 bytes discloses all
/// four (randomized) return-address bytes.
constexpr uint32_t kOverRead = 68;

struct ArmResult {
  bool halted = false;
  std::vector<uint32_t> output;
  uint64_t instructions = 0;
  uint64_t mem_checksum = 0;
  emu::TaintStats stats;
  std::vector<emu::LeakRecord> records;
};

ArmResult run_image_taint(const binary::Image& image, bool taint,
                          const std::vector<uint8_t>* request = nullptr) {
  binary::Memory mem;
  binary::load(image, mem);
  if (request != nullptr) {
    for (size_t i = 0; i < request->size(); ++i) {
      mem.write8(workloads::kServerRequestBase + static_cast<uint32_t>(i),
                 (*request)[i]);
    }
  }
  emu::Emulator emulator(image, mem);
  emulator.set_taint_tracking(taint);
  uint64_t steps = 0;
  while (steps < 2'000'000 && emulator.step()) {
    ++steps;
    if (emulator.halted()) break;
  }
  ArmResult r;
  r.halted = emulator.halted();
  r.output = emulator.output();
  r.instructions = emulator.stats().instructions;
  r.mem_checksum = mem.checksum();
  r.stats = emulator.taint_stats();
  r.records = emulator.leaks();
  return r;
}

// Tracking on vs off must be invisible to everything architectural, on
// every suite workload and on all three layouts of each.
TEST(TaintTest, ObserverNeutralAcrossSuiteAndLayouts) {
  for (const std::string& name : workloads::spec_names()) {
    const binary::Image original = workloads::make(name, 0);
    rewriter::RandomizeOptions opts;
    opts.seed = 11;
    const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
    for (const binary::Image* image : {&original, &rr.naive, &rr.vcfr}) {
      const ArmResult off = run_image_taint(*image, false);
      const ArmResult on = run_image_taint(*image, true);
      EXPECT_EQ(off.halted, on.halted) << name;
      EXPECT_EQ(off.output, on.output) << name;
      EXPECT_EQ(off.instructions, on.instructions) << name;
      EXPECT_EQ(off.mem_checksum, on.mem_checksum) << name;
    }
  }
}

// Same image, same request, run twice: the provenance chain is replayed
// bit for bit (counters and every record field).
TEST(TaintTest, LeakRecordsAreDeterministic) {
  const binary::Image original = workloads::make_leaky_server();
  rewriter::RandomizeOptions opts;
  opts.seed = 5;
  const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
  const std::vector<uint8_t> req = workloads::build_leak_request(kOverRead);
  const ArmResult a = run_image_taint(rr.vcfr, true, &req);
  const ArmResult b = run_image_taint(rr.vcfr, true, &req);
  EXPECT_EQ(a.stats.sources, b.stats.sources);
  EXPECT_EQ(a.stats.propagations, b.stats.propagations);
  EXPECT_EQ(a.stats.leaks, b.stats.leaks);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].origin, b.records[i].origin);
    EXPECT_EQ(a.records[i].origin_rpc, b.records[i].origin_rpc);
    EXPECT_EQ(a.records[i].epoch, b.records[i].epoch);
    EXPECT_EQ(a.records[i].depth, b.records[i].depth);
    EXPECT_EQ(a.records[i].sink, b.records[i].sink);
    EXPECT_EQ(a.records[i].sink_rpc, b.records[i].sink_rpc);
    EXPECT_EQ(a.records[i].instruction, b.records[i].instruction);
  }
}

// The planted over-read: silent on the original layout (no randomized
// secret exists), detected with full provenance on randomized siblings.
TEST(TaintTest, NativeSilentVcfrDetects) {
  const binary::Image original = workloads::make_leaky_server();
  const std::vector<uint8_t> req = workloads::build_leak_request(kOverRead);

  const ArmResult native = run_image_taint(original, true, &req);
  EXPECT_TRUE(native.halted);
  EXPECT_EQ(native.stats.sources, 0u);
  EXPECT_EQ(native.stats.leaks, 0u);

  for (const uint64_t seed : {5u, 6u, 7u}) {
    rewriter::RandomizeOptions opts;
    opts.seed = seed;
    const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
    const ArmResult vcfr = run_image_taint(rr.vcfr, true, &req);
    EXPECT_TRUE(vcfr.halted) << seed;
    // The echo loop discloses the four saved-return bytes, one sink
    // firing each, one hop (ldb) from the pushed secret.
    EXPECT_EQ(vcfr.stats.leaks, 4u) << seed;
    ASSERT_FALSE(vcfr.records.empty()) << seed;
    for (const emu::LeakRecord& l : vcfr.records) {
      EXPECT_EQ(l.origin, emu::TaintOrigin::kRetPush) << seed;
      EXPECT_EQ(l.sink, emu::LeakSink::kOut) << seed;
      EXPECT_EQ(l.depth, 1u) << seed;
      EXPECT_NE(l.origin_rpc, 0u) << seed;
    }
  }
}

// An in-bounds echo (resp_len <= 64) never touches the saved return:
// the tracker stays silent even on the randomized layout.
TEST(TaintTest, InBoundsEchoIsSilent) {
  const binary::Image original = workloads::make_leaky_server();
  rewriter::RandomizeOptions opts;
  opts.seed = 5;
  const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
  const std::vector<uint8_t> req = workloads::build_leak_request(32);
  const ArmResult vcfr = run_image_taint(rr.vcfr, true, &req);
  EXPECT_TRUE(vcfr.halted);
  EXPECT_GE(vcfr.stats.sources, 1u);  // the secret was born...
  EXPECT_EQ(vcfr.stats.leaks, 0u);    // ...but never escaped
}

serve::ServeConfig leaky_serve() {
  serve::ServeConfig sc;
  sc.tenants = 2;
  sc.cores = 1;
  sc.duration = 60'000;
  sc.model = serve::ArrivalModel::kOpen;
  sc.dist = serve::Distribution::kFixed;
  sc.mean_interarrival = 4'000;
  sc.workloads = {"leaky"};
  sc.seed = 5;
  sc.taint = true;
  return sc;
}

// Serving leaky tenants: sink firings are attributed to the in-flight
// request (CSV columns appear, per-tenant totals add up) and the whole
// run replays byte-identically.
TEST(TaintTest, ServeAttributionIsDeterministic) {
  const serve::ServeReport a = serve::run_serve(leaky_serve());
  const serve::ServeReport b = serve::run_serve(leaky_serve());
  EXPECT_TRUE(a.taint_enabled);
  EXPECT_GT(a.leaks, 0u);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.latency_csv(), b.latency_csv());
  EXPECT_NE(a.latency_csv().find(",leaks,leak_depth"), std::string::npos);
  // Request-attributed firings reconcile with the per-tenant totals.
  for (const serve::TenantReport& t : a.tenants) {
    uint64_t sum = 0;
    for (const serve::RequestRecord& r : t.records) sum += r.leaks;
    EXPECT_EQ(sum, t.leaks);
  }
}

// Tracking off keeps the legacy report and CSV byte-identical (the
// conditional columns/objects never render).
TEST(TaintTest, UntaintedServeRendersNoTaintFields) {
  serve::ServeConfig sc = leaky_serve();
  sc.taint = false;
  const serve::ServeReport r = serve::run_serve(sc);
  EXPECT_FALSE(r.taint_enabled);
  EXPECT_EQ(r.to_json().find("taint"), std::string::npos);
  EXPECT_EQ(r.latency_csv().find("leaks"), std::string::npos);
}

// --rerand-on-leak: every sink firing schedules a fresh placement for
// the leaking tenant, fired at its next request boundary — the tenant is
// re-keyed (epoch advances) and keeps serving.
TEST(TaintTest, RerandOnLeakRekeysLeakingTenant) {
  serve::ServeConfig sc = leaky_serve();
  sc.rerandomize.on_leak = true;
  const serve::ServeReport r = serve::run_serve(sc);
  EXPECT_GT(r.leaks, 0u);
  EXPECT_GT(r.leak_rerands, 0u);
  EXPECT_EQ(r.tenants_down, 0u);
  // Still a working service after the re-keys.
  EXPECT_GT(r.completed, 0u);
  for (const serve::TenantReport& t : r.tenants) EXPECT_FALSE(t.down);
}

// Attribution survives perturbation: a crash + restart mid-run does not
// break determinism of the leak accounting.
TEST(TaintTest, AttributionStableUnderInjectionAndRestart) {
  serve::ServeConfig sc = leaky_serve();
  sc.tenants = 3;
  sc.cores = 2;
  sc.duration = 100'000;
  sc.restart.mode = os::RestartPolicy::Mode::kOnFault;
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kCodeByte;
  plan.at_instruction = 500;
  plan.seed = 3;
  sc.injections.emplace_back(1u, plan);
  const serve::ServeReport a = serve::run_serve(sc);
  const serve::ServeReport b = serve::run_serve(sc);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.latency_csv(), b.latency_csv());
  EXPECT_GT(a.leaks, 0u);
}

}  // namespace
}  // namespace vcfr
