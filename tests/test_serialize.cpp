// VXE serialization round-trip and robustness tests.
#include <gtest/gtest.h>

#include <sstream>

#include "binary/serialize.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::binary {
namespace {

Image sample_image() {
  return isa::assemble(R"(
    .name sample
    .entry main
    .data 0x10000000
    t:
      .ptr f
      .word 77
    .text
    .func main
    main:
      call f
      out r1
      halt
    .func f
    f:
      mov r1, 42
      ret
  )");
}

void expect_equal(const Image& a, const Image& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.layout, b.layout);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.code_base, b.code_base);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.data_base, b.data_base);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.entry, b.entry);
  EXPECT_EQ(a.relocs.size(), b.relocs.size());
  EXPECT_EQ(a.functions.size(), b.functions.size());
  EXPECT_EQ(a.rand_base, b.rand_base);
  EXPECT_EQ(a.rand_size, b.rand_size);
  EXPECT_EQ(a.sparse_code, b.sparse_code);
  EXPECT_EQ(a.fallthrough, b.fallthrough);
  EXPECT_EQ(a.tables.derand, b.tables.derand);
  EXPECT_EQ(a.tables.rand, b.tables.rand);
  EXPECT_EQ(a.tables.unrandomized, b.tables.unrandomized);
  EXPECT_EQ(a.tables.table_base, b.tables.table_base);
  EXPECT_EQ(a.tables.table_bytes, b.tables.table_bytes);
}

TEST(SerializeTest, OriginalRoundTrip) {
  const Image image = sample_image();
  std::stringstream ss;
  save(image, ss);
  const Image back = load_file(ss);
  expect_equal(image, back);
}

TEST(SerializeTest, RandomizedLayoutsRoundTripAndStillRun) {
  const Image image = sample_image();
  rewriter::RandomizeOptions opts;
  opts.seed = 31337;
  const auto rr = rewriter::randomize(image, opts);
  const auto golden = emu::run_image(rr.vcfr);

  for (const Image* img : {&rr.naive, &rr.vcfr}) {
    std::stringstream ss;
    save(*img, ss);
    const Image back = load_file(ss);
    expect_equal(*img, back);
    const auto r = emu::run_image(back);
    EXPECT_TRUE(r.halted) << r.error;
    EXPECT_EQ(r.output, golden.output);
  }
}

TEST(SerializeTest, WorkloadScaleRoundTrip) {
  const Image image = workloads::make("sjeng", 0);
  std::stringstream ss;
  save(image, ss);
  const Image back = load_file(ss);
  expect_equal(image, back);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "ELF!this is not a vxe image";
  EXPECT_THROW((void)load_file(ss), std::runtime_error);
}

TEST(SerializeTest, RejectsTruncation) {
  const Image image = sample_image();
  std::stringstream ss;
  save(image, ss);
  const std::string full = ss.str();
  for (size_t cut : {5ul, 20ul, full.size() / 2, full.size() - 3}) {
    std::stringstream part(full.substr(0, cut));
    EXPECT_THROW((void)load_file(part), std::runtime_error) << cut;
  }
}

TEST(SerializeTest, RejectsUnknownLayoutByte) {
  const Image image = sample_image();
  std::stringstream ss;
  save(image, ss);
  std::string bytes = ss.str();
  bytes[4] = 9;  // layout byte
  std::stringstream bad(bytes);
  EXPECT_THROW((void)load_file(bad), std::runtime_error);
}

TEST(SerializeTest, MutationFuzzOnlyEverThrowsFormatError) {
  // Loader-hardening contract: no byte-level mutation or truncation of a
  // valid VXE stream may escape load_file as anything but a typed
  // FormatError (and absolutely not as a crash or a std::bad_alloc from a
  // corrupted count field). A mutation that happens to keep the format
  // valid may still load — that is fine; only the failure *type* is pinned.
  const Image base = sample_image();
  rewriter::RandomizeOptions opts;
  opts.seed = 4242;
  const auto rr = rewriter::randomize(base, opts);

  uint64_t state = 0x5eed;
  auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };

  size_t loaded = 0, rejected = 0;
  for (const Image* img : {&base, &rr.naive, &rr.vcfr}) {
    std::stringstream ss;
    save(*img, ss);
    const std::string bytes = ss.str();
    for (int round = 0; round < 200; ++round) {
      std::string mutated = bytes;
      switch (next() % 3) {
        case 0:  // single bit flip
          mutated[next() % mutated.size()] ^=
              static_cast<char>(1u << (next() % 8));
          break;
        case 1:  // truncation
          mutated.resize(next() % mutated.size());
          break;
        default:  // burst: four byte overwrites
          for (int i = 0; i < 4; ++i) {
            mutated[next() % mutated.size()] = static_cast<char>(next());
          }
          break;
      }
      std::stringstream in(mutated);
      try {
        const Image back = load_file(in);
        (void)back;
        ++loaded;
      } catch (const FormatError& e) {
        EXPECT_FALSE(format_fault_name(e.fault()).empty());
        ++rejected;
      } catch (const std::exception& e) {
        ADD_FAILURE() << "non-FormatError escaped load_file: " << e.what();
      }
    }
  }
  EXPECT_EQ(loaded + rejected, 600u);
  EXPECT_GT(rejected, 0u) << "the fuzzer never hit a framing field";
}

TEST(SerializeTest, FileRoundTrip) {
  const Image image = sample_image();
  const std::string path = testing::TempDir() + "/vcfr_serialize_test.vxe";
  save(image, path);
  const Image back = load_file(path);
  expect_equal(image, back);
  EXPECT_THROW((void)load_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace vcfr::binary
