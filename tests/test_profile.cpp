// Tests for the guest-level profiler (src/profile/): the cycle
// conservation invariant (cause buckets sum exactly to the core's cycle
// count) across the whole workload suite, UPC fold-back resolution on a
// large randomized binary, shadow-stack call attribution, observer
// neutrality, byte-identical same-seed exports, and fleet per-tenant
// profiles (per-core conservation + shared-L2 contention blame).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "profile/profiler.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "workloads/suite.hpp"

namespace vcfr::profile {
namespace {

sim::CpuConfig quiet() {
  sim::CpuConfig c;
  c.mem.dram.t_refi = 0;
  return c;
}

uint64_t cause_sum(const Profiler& prof) {
  uint64_t sum = 0;
  for (size_t c = 0; c < kNumCauses; ++c) {
    sum += prof.cause_cycles(static_cast<Cause>(c));
  }
  return sum;
}

// Every simulated cycle lands in exactly one cause bucket: for every
// workload in the suite, both native and randomized, the attributed total
// and the bucket sum equal the simulator's cycle count exactly.
TEST(ProfilerConservationTest, BucketsSumToCoreCyclesAcrossSuite) {
  for (const std::string& name : workloads::spec_names()) {
    const binary::Image orig = workloads::make(name, 0);

    Profiler native(orig);
    const auto nr = sim::simulate(orig, 5'000'000, quiet(), nullptr, &native);
    ASSERT_TRUE(nr.halted) << name;
    EXPECT_EQ(native.attributed_cycles(), nr.cycles) << name << " native";
    EXPECT_EQ(cause_sum(native), nr.cycles) << name << " native";
    EXPECT_EQ(native.instructions(), nr.instructions) << name << " native";

    rewriter::RandomizeOptions opts;
    opts.seed = 7;
    const auto rr = rewriter::randomize(orig, opts);
    Profiler vcfr(rr.vcfr);
    const auto vr =
        sim::simulate(rr.vcfr, 5'000'000, quiet(), nullptr, &vcfr);
    ASSERT_TRUE(vr.halted) << name;
    EXPECT_EQ(vcfr.attributed_cycles(), vr.cycles) << name << " vcfr";
    EXPECT_EQ(cause_sum(vcfr), vr.cycles) << name << " vcfr";
    EXPECT_EQ(vcfr.instructions(), vr.instructions) << name << " vcfr";
    // Randomized runs exercise the VCFR-specific buckets somewhere in the
    // suite; native runs must never touch them.
    EXPECT_EQ(native.cause_cycles(Cause::kDrcMiss) +
                  native.cause_cycles(Cause::kTableWalk) +
                  native.cause_cycles(Cause::kRetBitmap),
              0u)
        << name << " native must have no DRC activity";
  }
}

// Fold-back through the translation tables: on the big branchy workload,
// nearly every cycle resolves to a named original-space function even
// though execution runs in the randomized space.
TEST(ProfilerResolutionTest, GccScale2ResolvesAtLeast95Percent) {
  const binary::Image orig = workloads::make("gcc", 2);
  rewriter::RandomizeOptions opts;
  opts.seed = 7;
  const auto rr = rewriter::randomize(orig, opts);
  Profiler prof(rr.vcfr);
  const auto r = sim::simulate(rr.vcfr, 50'000'000, quiet(), nullptr, &prof);
  ASSERT_TRUE(r.halted);
  EXPECT_GE(prof.resolved_fraction(), 0.95);
  EXPECT_EQ(prof.attributed_cycles(), r.cycles);
}

// Attaching a profiler must not perturb the simulation (pure observation).
TEST(ProfilerObserverTest, ProfiledRunMatchesUnprofiledRun) {
  const binary::Image orig = workloads::make("sjeng", 0);
  rewriter::RandomizeOptions opts;
  opts.seed = 11;
  const auto rr = rewriter::randomize(orig, opts);
  const auto bare = sim::simulate(rr.vcfr, 5'000'000, quiet());
  Profiler prof(rr.vcfr);
  const auto obs = sim::simulate(rr.vcfr, 5'000'000, quiet(), nullptr, &prof);
  EXPECT_EQ(bare.cycles, obs.cycles);
  EXPECT_EQ(bare.instructions, obs.instructions);
  EXPECT_EQ(bare.drc.misses, obs.drc.misses);
}

TEST(ProfilerDeterminismTest, SameSeedExportsAreByteIdentical) {
  const auto run = [] {
    const binary::Image orig = workloads::make("gcc", 0);
    rewriter::RandomizeOptions opts;
    opts.seed = 5;
    const auto rr = rewriter::randomize(orig, opts);
    Profiler prof(rr.vcfr);
    const auto r = sim::simulate(rr.vcfr, 5'000'000, quiet(), nullptr, &prof);
    ProfileMeta meta;
    meta.app = orig.name;
    meta.layout = "vcfr";
    meta.seed = 5;
    meta.expected_cycles = r.cycles;
    return prof.to_json(meta, 10) + "\x1e" + prof.to_collapsed() + "\x1e" +
           prof.to_hot_blocks(meta, 10);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"conserved\": true"), std::string::npos);
}

// Shadow-stack semantics on a handcrafted program: callee cycles attribute
// to the callee under its caller's path, and the flame tree records the
// call path in collapsed form.
TEST(ProfilerShadowStackTest, CallPathsFoldToCollapsedStacks) {
  const binary::Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, 0
    l:
      call leaf
      add r1, 1
      cmp r1, 50
      jlt l
      halt
    .func leaf
    leaf:
      add r2, 3
      ret
  )");
  rewriter::RandomizeOptions opts;
  opts.seed = 3;
  const auto rr = rewriter::randomize(img, opts);
  Profiler prof(rr.vcfr);
  const auto r = sim::simulate(rr.vcfr, 100'000, quiet(), nullptr, &prof);
  ASSERT_TRUE(r.halted);

  const auto funcs = prof.functions();
  uint64_t leaf_instr = 0;
  for (const auto& f : funcs) {
    if (f.name == "leaf") leaf_instr = f.instructions;
  }
  EXPECT_EQ(leaf_instr, 100u) << "50 calls x (add + ret)";
  EXPECT_EQ(prof.resolved_fraction(), 1.0);

  const std::string collapsed = prof.to_collapsed();
  EXPECT_NE(collapsed.find("main;leaf "), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("main "), std::string::npos) << collapsed;

  // Block hotness: the loop body leader executes once per iteration, so
  // the hot-block report names main's loop.
  ProfileMeta meta;
  meta.app = "handcrafted";
  meta.layout = "vcfr";
  meta.expected_cycles = r.cycles;
  const std::string blocks = prof.to_hot_blocks(meta, 3);
  EXPECT_NE(blocks.find("main"), std::string::npos) << blocks;
  EXPECT_NE(blocks.find("call"), std::string::npos) << blocks;
}

// The golden model has no clock: the functional profile charges exactly
// one cycle per retired instruction.
TEST(ProfilerEmulatorTest, FunctionalProfileCountsOneCyclePerInstruction) {
  const binary::Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, 0
    l:
      call leaf
      add r1, 1
      cmp r1, 10
      jlt l
      halt
    .func leaf
    leaf:
      ret
  )");
  binary::Memory mem;
  binary::load(img, mem);
  emu::Emulator emulator(img, mem);
  Profiler prof(img);
  emulator.set_profiler(&prof);
  emu::StepInfo info;
  while (emulator.step(&info)) {
  }
  ASSERT_TRUE(emulator.halted());
  EXPECT_GT(prof.instructions(), 0u);
  EXPECT_EQ(prof.attributed_cycles(), prof.instructions());
  EXPECT_EQ(prof.cause_cycles(Cause::kIssue), prof.instructions());
  EXPECT_EQ(prof.resolved_fraction(), 1.0);
}

// Fleet profiling: each core's tenant profiles plus kernel-attributed
// externals account for every cycle of that core's clock, and shared-L2
// contention carries a per-aggressor breakdown.
TEST(ProfilerFleetTest, PerTenantProfilesConservePerCoreCycles) {
  os::KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 1000;
  kc.measure_isolated = false;
  os::Kernel kernel(kc);
  const char* names[] = {"bzip2", "libquantum", "sjeng", "mcf"};
  for (int i = 0; i < 4; ++i) {
    os::ProcessConfig pc;
    pc.workload = names[i];
    pc.scale = 0;
    pc.seed = 7u + i;
    kernel.spawn(pc);
  }
  kernel.enable_profiling();
  const os::FleetReport report = kernel.run();

  std::map<uint32_t, uint64_t> per_core_attributed;
  uint64_t contention_total = 0;
  for (const os::ProcessReport& pr : report.processes) {
    const Profiler* prof = kernel.profiler(pr.pid);
    ASSERT_NE(prof, nullptr);
    EXPECT_TRUE(pr.halted) << pr.workload;
    EXPECT_EQ(prof->instructions(), pr.instructions) << pr.workload;
    per_core_attributed[pr.core] += prof->attributed_cycles();
    EXPECT_EQ(cause_sum(*prof), prof->attributed_cycles()) << pr.workload;
    uint64_t by_asid = 0;
    for (const auto& [asid, cyc] : prof->l2_contention_by_asid()) {
      by_asid += cyc;
    }
    EXPECT_EQ(by_asid, prof->cause_cycles(Cause::kL2Contention))
        << pr.workload;
    contention_total += by_asid;
  }
  for (const os::CoreReport& core : report.cores) {
    EXPECT_EQ(per_core_attributed[core.core], core.cycles)
        << "core " << core.core
        << ": tenant profiles + externals must cover the core clock";
  }
  EXPECT_GT(contention_total, 0u)
      << "four tenants on two cores must contend on the shared L2";
}

// Profiling a fleet must not change any simulated outcome.
TEST(ProfilerFleetTest, FleetProfilingHasNoObserverEffect) {
  const auto run = [](bool profiled) {
    os::KernelConfig kc;
    kc.cores = 2;
    kc.sched.slice_instructions = 500;
    kc.measure_isolated = false;
    os::Kernel kernel(kc);
    for (int i = 0; i < 3; ++i) {
      os::ProcessConfig pc;
      pc.workload = "bzip2";
      pc.scale = 0;
      pc.seed = 20u + i;
      kernel.spawn(pc);
    }
    if (profiled) kernel.enable_profiling();
    return kernel.run().to_json();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace vcfr::profile
