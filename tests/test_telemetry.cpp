// Tests for the telemetry subsystem (src/telemetry/): JSON writer
// escaping and layout, registry scoping and duplicate detection,
// histogram bucket edges, tracer ring wraparound and deterministic
// export, sampler interval semantics, and byte-identical telemetry
// across two same-seed fleet runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "telemetry/json_writer.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/stat_registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace vcfr::telemetry {
namespace {

// ---- json_writer ----

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonWriterTest, CompactAndPrettyContainers) {
  JsonWriter w;
  w.begin_object(JsonWriter::Style::kPretty);
  w.key("a").value(uint64_t{1});
  w.key("b").begin_object();
  w.key("x").value(2);
  w.key("y").value(true);
  w.end_object();
  w.key("c").begin_array();
  w.value(uint64_t{1});
  w.value(uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"a\": 1,\n"
            "  \"b\": {\"x\": 2, \"y\": true},\n"
            "  \"c\": [1, 2]\n"
            "}");
}

TEST(JsonWriterTest, DoubleRenderingIsStable) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(0.105398), "0.105398");
  EXPECT_EQ(json_double(1.0 / 3.0), "0.333333");
}

// ---- stat registry ----

TEST(StatRegistryTest, ScopesComposeDottedNames) {
  StatRegistry reg;
  uint64_t hits = 7;
  const Scope l1 = reg.root().scope("fleet").scope("core0").scope("il1");
  l1.counter("hits", &hits);
  reg.root().scope("fleet").gauge("ipc", [] { return 0.5; });

  ASSERT_EQ(reg.stats().size(), 2u);
  const auto& stats = reg.stats();
  ASSERT_TRUE(stats.count("fleet.core0.il1.hits"));
  ASSERT_TRUE(stats.count("fleet.ipc"));
  EXPECT_EQ(stats.at("fleet.core0.il1.hits").count_value(), 7u);
  hits = 8;
  EXPECT_EQ(stats.at("fleet.core0.il1.hits").count_value(), 8u)
      << "counters are live bindings, not snapshots";
  EXPECT_DOUBLE_EQ(stats.at("fleet.ipc").value(), 0.5);
}

TEST(StatRegistryTest, DuplicateNamesThrow) {
  StatRegistry reg;
  uint64_t cell = 0;
  reg.root().counter("x", &cell);
  EXPECT_THROW(reg.root().counter("x", &cell), std::logic_error);
  EXPECT_THROW(reg.root().gauge("x", [] { return 0.0; }), std::logic_error);
}

TEST(StatRegistryTest, UnattachedScopeIsInert) {
  Scope scope;  // no registry behind it
  uint64_t cell = 0;
  EXPECT_FALSE(scope.attached());
  scope.counter("x", &cell);                     // must not crash
  scope.counter_fn("y", [] { return 1ull; });    // must not crash
  scope.gauge("z", [] { return 1.0; });          // must not crash
  EXPECT_EQ(scope.histogram("h"), nullptr);
}

TEST(StatRegistryTest, FreezeCapturesValuesFromDyingComponents) {
  StatRegistry reg;
  {
    uint64_t cell = 41;
    reg.root().counter("c", &cell);
    reg.root().gauge("g", [&cell] { return static_cast<double>(cell) / 2; });
    cell = 42;
    reg.freeze();
  }  // cell is gone; reads must use the captured values
  EXPECT_EQ(reg.stats().at("c").count_value(), 42u);
  EXPECT_DOUBLE_EQ(reg.stats().at("g").value(), 21.0);
}

TEST(HistogramTest, BucketEdgesAreLog2) {
  // Bucket 0 holds zeros; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of((1ull << 33) - 1), 33u);

  Histogram h(4);  // tiny: overflow clamps into the last bucket
  h.record(0);
  h.record(1);
  h.record(100);  // bucket_of = 7, clamped to 3
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 101u);
  EXPECT_EQ(h.max(), 100u);
}

TEST(HistogramTest, ZeroAndSaturatingValueEdges) {
  // The unclamped bucket index is the bit width: 0 maps to the dedicated
  // zero bucket, UINT64_MAX to index 64, clamped into the last bucket.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX >> 1), 63u);

  Histogram h;  // default 32 buckets
  h.record(0);
  h.record(UINT64_MAX);
  EXPECT_EQ(h.buckets()[0], 1u) << "zero lands in the zero bucket";
  EXPECT_EQ(h.buckets()[31], 1u) << "UINT64_MAX clamps into the last bucket";
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), UINT64_MAX);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(HistogramTest, EdgeValuesRenderDeterministicallyInJson) {
  StatRegistry reg;
  Histogram* h = reg.root().histogram("h");
  h->record(0);
  h->record(UINT64_MAX);

  // Bucket 0 and bucket 31 are occupied; the 30 in between render as
  // explicit zeros (only *trailing* zero buckets are dropped).
  std::string buckets = "\"buckets\": [1";
  for (int i = 0; i < 30; ++i) buckets += ", 0";
  buckets += ", 1]";
  const std::string json = reg.to_json();
  EXPECT_NE(json.find(buckets), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 18446744073709551615"), std::string::npos)
      << "sum must not be rendered through a double";
  EXPECT_NE(json.find("\"max\": 18446744073709551615"), std::string::npos);
  // Percentiles in the JSON shape: p50 selects the zero sample, p99/p999
  // the saturating sample (single-sample last bucket reports max).
  EXPECT_NE(json.find("\"p50\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": 1.84467e+19"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\": 1.84467e+19"), std::string::npos) << json;
}

TEST(HistogramTest, PercentileEdgeCases) {
  // Empty histogram: every percentile is 0.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(99.9), 0.0);

  // All zeros: the dedicated zero bucket reports exactly 0.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(zeros.percentile(100.0), 0.0);

  // Single sample: every percentile reports that bucket's low edge (and
  // the last bucket reports max() exactly, so UINT64_MAX round-trips).
  Histogram one;
  one.record(6);  // bucket [4, 7]
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(one.percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(one.percentile(100.0), 4.0);

  Histogram sat;
  sat.record(UINT64_MAX);  // clamps into the last bucket; max() is its top
  EXPECT_DOUBLE_EQ(sat.percentile(50.0), static_cast<double>(UINT64_MAX));
  EXPECT_DOUBLE_EQ(sat.percentile(99.9), static_cast<double>(UINT64_MAX));

  // Interpolation across a bucket: three samples in [8, 15] place the
  // first at the low edge, the last at the high edge, the middle halfway.
  Histogram tri;
  tri.record(8);
  tri.record(9);
  tri.record(15);
  EXPECT_DOUBLE_EQ(tri.percentile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(tri.percentile(50.0), 11.5);
  EXPECT_DOUBLE_EQ(tri.percentile(100.0), 15.0);

  // Mixed buckets: ranks route to the right bucket before interpolating.
  Histogram mix;
  for (int i = 0; i < 99; ++i) mix.record(1);
  mix.record(1000);  // bucket [512, 1023], single sample -> low edge... but
                     // it is the last occupied, not the clamp bucket.
  EXPECT_DOUBLE_EQ(mix.percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(mix.percentile(99.0), 1.0);
  EXPECT_DOUBLE_EQ(mix.percentile(100.0), 512.0);
}

// ---- tracer ----

TEST(TracerTest, RingWrapsKeepingMostRecentEvents) {
  TraceLane lane(0, 4);
  for (uint64_t i = 0; i < 6; ++i) {
    lane.instant(TraceEventType::kDrcMiss, 0, /*cycle=*/i, /*arg=*/i);
  }
  EXPECT_EQ(lane.dropped(), 2u);
  const auto events = lane.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two (cycles 0, 1) were overwritten.
  EXPECT_EQ(events.front().cycle, 2u);
  EXPECT_EQ(events.back().cycle, 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].cycle, events[i].cycle) << "oldest-first order";
  }
}

TEST(TracerTest, ChromeExportMergesLanesDeterministically) {
  Tracer tracer(8);
  tracer.name_lane(0, "core 0");
  tracer.name_asid(0, 3, "pid 3");
  tracer.lane(1)->span(TraceEventType::kSlice, 1, /*cycle=*/10, /*dur=*/5);
  tracer.lane(0)->instant(TraceEventType::kDrcMiss, 3, /*cycle=*/10);
  tracer.lane(0)->span(TraceEventType::kTableWalk, 3, /*cycle=*/2, /*dur=*/7);

  const std::string json = tracer.to_chrome_json();
  // Metadata first, then events sorted by (cycle, lane).
  const size_t meta = json.find("process_name");
  const size_t walk = json.find("table_walk");
  const size_t miss = json.find("drc_miss");
  const size_t slice = json.find("\"slice\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(walk, std::string::npos);
  ASSERT_NE(miss, std::string::npos);
  ASSERT_NE(slice, std::string::npos);
  EXPECT_LT(meta, walk);
  EXPECT_LT(walk, miss) << "cycle 2 sorts before cycle 10";
  EXPECT_LT(miss, slice) << "same cycle: lane 0 sorts before lane 1";
  // Spans are complete events, instants are marked as thread-scoped.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

// ---- sampler ----

TEST(SamplerTest, PollsOnIntervalBoundaries) {
  StatRegistry reg;
  uint64_t cell = 0;
  reg.root().counter("c", &cell);
  Sampler sampler(&reg);
  sampler.set_interval(100);

  sampler.poll(50);  // before the first boundary: no row
  EXPECT_EQ(sampler.rows(), 0u);
  cell = 1;
  sampler.poll(120);  // crossed 100
  cell = 2;
  sampler.poll(130);  // same window: no new row
  cell = 3;
  sampler.poll(460);  // crossed (several) boundaries: one row
  ASSERT_EQ(sampler.rows(), 2u);

  const std::string csv = sampler.to_csv();
  EXPECT_EQ(csv,
            "cycle,c\n"
            "120,1\n"
            "460,3\n");
}

TEST(SamplerTest, LateRegisteredCountersJoinTheColumnUnion) {
  StatRegistry reg;
  uint64_t a = 1;
  reg.root().counter("a", &a);
  Sampler sampler(&reg);
  sampler.take(10);  // first epoch: only "a" exists

  // Components registered after the first snapshot (a lazily-constructed
  // core, a process spawned mid-run) must still appear in the export,
  // with the earlier rows zero-filled — not silently dropped.
  uint64_t m = 5;
  uint64_t z = 7;
  reg.root().counter("m", &m);
  reg.root().counter("z", &z);
  reg.root().gauge("g", [] { return 2.5; });
  a = 2;
  sampler.take(20);

  EXPECT_EQ(sampler.columns(),
            (std::vector<std::string>{"a", "g", "m", "z"}));
  EXPECT_EQ(sampler.to_csv(),
            "cycle,a,g,m,z\n"
            "10,1,0,0,0\n"
            "20,2,2.5,5,7\n");
  const std::string json = sampler.to_json();
  EXPECT_NE(json.find("[10, 1, 0, 0, 0]"), std::string::npos) << json;
  EXPECT_NE(json.find("[20, 2, 2.5, 5, 7]"), std::string::npos) << json;
}

TEST(SamplerTest, HistogramsExportPercentileColumns) {
  StatRegistry reg;
  Histogram* h = reg.root().histogram("lat");
  uint64_t c = 3;
  reg.root().counter("c", &c);
  for (uint64_t v = 1; v <= 100; ++v) h->record(v);
  Sampler sampler(&reg);
  sampler.take(10);

  // One p50 + one p99 column per histogram; the log2-bucket percentile is
  // an upper bucket edge, so pin the exact values the bucketing gives.
  EXPECT_EQ(sampler.columns(),
            (std::vector<std::string>{"c", "lat.p50", "lat.p99"}));
  const std::string csv = sampler.to_csv();
  std::stringstream ss(csv);
  std::string header, row;
  std::getline(ss, header);
  std::getline(ss, row);
  EXPECT_EQ(header, "cycle,c,lat.p50,lat.p99");
  // Percentiles render as %.6g doubles; both must be positive and ordered.
  const size_t c1 = row.find(',', row.find(',') + 1);
  const std::string p50s = row.substr(c1 + 1, row.find(',', c1 + 1) - c1 - 1);
  const std::string p99s = row.substr(row.rfind(',') + 1);
  EXPECT_GT(std::stod(p50s), 0.0);
  EXPECT_GE(std::stod(p99s), std::stod(p50s));
}

TEST(SamplerTest, HistogramPercentileColumnsStaySorted) {
  // "lat.p50" must not break the sorted-column invariant the zero-fill
  // merge relies on: a stat registered *under* the histogram's name
  // ("lat.alpha") sorts between "lat" and "lat.p50" in the registry walk,
  // so the derived percentile columns must be re-sorted into place.
  StatRegistry reg;
  Histogram* h = reg.root().histogram("lat");
  h->record(8);
  uint64_t a = 1;
  reg.root().scope("lat").counter("alpha", &a);
  Sampler sampler(&reg);
  sampler.take(10);
  // Adding columns later exercises the union merge against the re-sorted
  // first epoch.
  uint64_t z = 2;
  reg.root().counter("zz", &z);
  sampler.take(20);
  EXPECT_EQ(sampler.columns(),
            (std::vector<std::string>{"lat.alpha", "lat.p50", "lat.p99",
                                      "zz"}));
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("cycle,lat.alpha,lat.p50,lat.p99,zz\n"),
            std::string::npos)
      << csv;
  // The zero-filled first row carries zz=0; the second carries zz=2.
  EXPECT_NE(csv.find(",0\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",2\n"), std::string::npos) << csv;
}

TEST(TracerTest, DroppedCountersLandInTheRegistry) {
  StatRegistry reg;
  Tracer tracer(/*lane_capacity=*/4);
  tracer.register_stats(reg.root().scope("telemetry").scope("trace"));
  TraceLane* lane = tracer.lane(0);
  for (uint64_t i = 0; i < 10; ++i) {
    lane->instant(TraceEventType::kDrcMiss, 0, i);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"telemetry.trace.dropped\": 6"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"telemetry.trace.lane0.dropped\": 6"),
            std::string::npos)
      << json;
}

TEST(TracerTest, SealedTracerStillFindsExistingLanes) {
  Tracer tracer;
  TraceLane* lane = tracer.lane(3);
  tracer.seal();
  EXPECT_TRUE(tracer.sealed());
  EXPECT_EQ(tracer.find_lane(3), lane);
  EXPECT_EQ(tracer.find_lane(9), nullptr);
  EXPECT_EQ(tracer.lane(3), lane);  // lookup of an existing lane is fine
  ASSERT_EQ(tracer.lanes().size(), 1u);
  EXPECT_EQ(tracer.lanes()[0]->lane_id(), 3u);
}

#ifndef NDEBUG
TEST(TracerDeathTest, CreatingLaneAfterSealAsserts) {
  // Lazy lane creation from a worker thread would race the parallel
  // execute phase; the kernel pre-creates every lane then seals.
  Tracer tracer;
  (void)tracer.lane(0);
  tracer.seal();
  EXPECT_DEATH((void)tracer.lane(1), "seal");
}
#endif

TEST(SamplerTest, DisabledSamplerNeverRecords) {
  StatRegistry reg;
  uint64_t cell = 0;
  reg.root().counter("c", &cell);
  Sampler sampler(&reg);
  for (uint64_t c = 0; c < 1000; c += 10) sampler.poll(c);
  EXPECT_EQ(sampler.rows(), 0u);
}

// ---- end-to-end determinism ----

os::KernelConfig fleet_config() {
  os::KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 1000;
  kc.measure_isolated = false;
  return kc;
}

struct FleetTelemetry {
  std::string stats;
  std::string trace;
  std::string samples;
};

// kernel.pool.steals is the one documented host-nondeterministic export
// (ARCHITECTURE.md §14): steal counts depend on host thread timing, are
// telemetry-only, and never enter a CI-diffed surface. Scrub it before
// comparing bytes — everything else must still match exactly.
std::string scrub_steals_counter(const std::string& stats) {
  std::string out;
  std::istringstream in(stats);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("kernel.pool.steals") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string scrub_steals_column(const std::string& csv) {
  std::istringstream in(csv);
  std::string header;
  if (!std::getline(in, header)) return csv;
  size_t column = 0;
  bool found = false;
  {
    std::istringstream cols(header);
    std::string name;
    for (size_t i = 0; std::getline(cols, name, ','); ++i) {
      if (name.find("kernel.pool.steals") != std::string::npos) {
        column = i;
        found = true;
      }
    }
  }
  if (!found) return csv;
  std::string out;
  std::string line = header;
  do {
    std::istringstream cols(line);
    std::string cell;
    for (size_t i = 0; std::getline(cols, cell, ','); ++i) {
      if (i == column) continue;
      if (!out.empty() && out.back() != '\n') out += ',';
      out += cell;
    }
    out += '\n';
  } while (std::getline(in, line));
  return out;
}

FleetTelemetry run_fleet_with_telemetry(uint64_t seed) {
  TelemetryConfig tc;
  tc.trace = true;
  tc.sample_interval = 2000;
  Telemetry tel(tc);

  os::Kernel kernel(fleet_config());
  kernel.attach_telemetry(&tel);
  const char* names[] = {"bzip2", "libquantum", "sjeng"};
  for (int i = 0; i < 3; ++i) {
    os::ProcessConfig pc;
    pc.workload = names[i];
    pc.scale = 0;
    pc.seed = seed ^ (0x9e3779b97f4a7c15ull * (i + 1));
    kernel.spawn(pc);
  }
  (void)kernel.run();
  return {scrub_steals_counter(tel.registry().to_json()),
          tel.tracer()->to_chrome_json(),
          scrub_steals_column(tel.sampler().to_csv())};
}

TEST(TelemetryDeterminismTest, SameSeedFleetsExportIdenticalBytes) {
  const FleetTelemetry a = run_fleet_with_telemetry(7);
  const FleetTelemetry b = run_fleet_with_telemetry(7);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.samples, b.samples);

  // The exports carry real content, not just identical emptiness.
  EXPECT_NE(a.stats.find("fleet.core0.il1.accesses"), std::string::npos);
  EXPECT_NE(a.stats.find("fleet.proc2.instructions"), std::string::npos);
  EXPECT_NE(a.trace.find("context_switch"), std::string::npos);
  EXPECT_NE(a.trace.find("round_commit"), std::string::npos);
  EXPECT_NE(a.samples.find("fleet.shared_l2.accesses"), std::string::npos);
  EXPECT_GT(a.samples.size(), a.samples.find('\n') + 1)
      << "at least one sample row";

  const FleetTelemetry c = run_fleet_with_telemetry(8);
  EXPECT_NE(a.trace, c.trace) << "different seed changes the trace";
}

// ---- journal capacity (--journal-capacity) ----

TEST(TelemetryTest, JournalCapacityBoundsRingAndCountsDrops) {
  TelemetryConfig tc;
  tc.journal = true;
  tc.journal_capacity = 4;
  Telemetry tel(tc);
  Journal* j = tel.journal();
  ASSERT_NE(j, nullptr);
  for (uint64_t i = 0; i < 10; ++i) {
    j->log({i, JournalKind::kSpawn, static_cast<uint32_t>(i), -1, 0, ""});
  }
  const auto kept = j->entries();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().cycle, 6u) << "oldest entries dropped first";
  EXPECT_EQ(j->dropped(), 6u);
  // The drop total is exported as telemetry.journal.dropped so an
  // truncated post-mortem is visible in the stats snapshot.
  EXPECT_NE(tel.registry().to_json().find(
                "\"telemetry.journal.dropped\": 6"),
            std::string::npos);
}

}  // namespace
}  // namespace vcfr::telemetry
