// Differential tests for the VX flag semantics: the emulator's ALU flags
// are checked against an independent reference model over random operand
// sweeps, and every condition code is checked against its definition.
#include <gtest/gtest.h>

#include <random>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"

namespace vcfr::emu {
namespace {

/// Independent reference for flags after `cmp a, b` (sub semantics).
struct RefFlags {
  bool z, n, c, v;
};

RefFlags ref_cmp(uint32_t a, uint32_t b) {
  const uint32_t r = a - b;
  return {
      .z = r == 0,
      .n = (r >> 31) != 0,
      .c = a < b,
      .v = ((int64_t)(int32_t)a - (int64_t)(int32_t)b) !=
           (int64_t)(int32_t)r,
  };
}

bool ref_cond(isa::Cond cond, RefFlags f) {
  switch (cond) {
    case isa::Cond::kEq: return f.z;
    case isa::Cond::kNe: return !f.z;
    case isa::Cond::kLt: return f.n != f.v;
    case isa::Cond::kLe: return f.z || f.n != f.v;
    case isa::Cond::kGt: return !f.z && f.n == f.v;
    case isa::Cond::kGe: return f.n == f.v;
    case isa::Cond::kB: return f.c;
    case isa::Cond::kAe: return !f.c;
  }
  return false;
}

/// Runs `cmp r1, r2; jCC taken` and reports whether the branch was taken.
bool emu_takes(uint32_t a, uint32_t b, isa::Cond cond) {
  const std::string src = "mov r1, " + std::to_string(a) + "\n" +
                          "mov r2, " + std::to_string(b) + "\n" +
                          "cmp r1, r2\n" + "j" +
                          std::string(isa::cond_name(cond)) +
                          " taken\nmov r3, 0\nout r3\nhalt\n" +
                          "taken:\nmov r3, 1\nout r3\nhalt\n";
  const auto r = run_image(isa::assemble(src));
  EXPECT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.output.size(), 1u);
  return !r.output.empty() && r.output[0] == 1;
}

class CondSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CondSweep, MatchesReferenceSemantics) {
  std::mt19937 rng(GetParam());
  // Mix random operands with adversarial corner values.
  const uint32_t corners[] = {0u,          1u,          0x7fffffffu,
                              0x80000000u, 0xffffffffu, 0x80000001u};
  for (int i = 0; i < 40; ++i) {
    uint32_t a, b;
    if (i < 12) {
      a = corners[i % 6];
      b = corners[(i / 6) % 6];
    } else {
      a = rng();
      b = rng() % 4 == 0 ? a : rng();
    }
    const RefFlags f = ref_cmp(a, b);
    for (int c = 0; c <= static_cast<int>(isa::Cond::kAe); ++c) {
      const auto cond = static_cast<isa::Cond>(c);
      EXPECT_EQ(emu_takes(a, b, cond), ref_cond(cond, f))
          << "a=" << a << " b=" << b << " cond=" << isa::cond_name(cond);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondSweep, ::testing::Values(1u, 2u, 3u));

TEST(FlagsTest, AddSetsCarryAndOverflow) {
  // 0xffffffff + 1 = 0 with carry, no signed overflow -> jb taken after
  // recreating the flags via add (add sets C like x86).
  const auto r = run_image(isa::assemble(R"(
    mov r1, 0xffffffff
    add r1, 1
    jeq was_zero
    mov r2, 0
    out r2
    halt
  was_zero:
    mov r2, 1
    out r2
    halt
  )"));
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 1u) << "wraparound result must set Z";
}

TEST(FlagsTest, LogicOpsClearCarry) {
  // After a borrowing cmp (C set), an AND clears C: jae must be taken.
  const auto r = run_image(isa::assemble(R"(
    mov r1, 1
    cmp r1, 2       ; C := 1 (borrow)
    and r1, r1      ; logic op clears C
    jae cleared
    mov r2, 0
    out r2
    halt
  cleared:
    mov r2, 1
    out r2
    halt
  )"));
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 1u);
}

TEST(FlagsTest, TestInstructionDoesNotWriteRegister) {
  const auto r = run_image(isa::assemble(R"(
    mov r1, 12
    mov r2, 10
    test r1, r2
    out r1
    halt
  )"));
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 12u);
}

TEST(FlagsTest, MulAndShiftSetZeroFlag) {
  const auto r = run_image(isa::assemble(R"(
    mov r1, 4
    shr r1, 3       ; 0 -> Z
    jeq z1
    halt
  z1:
    mov r2, 7
    mul r2, 0       ; 0 -> Z
    jeq z2
    halt
  z2:
    mov r3, 1
    out r3
    halt
  )"));
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 1u);
}

}  // namespace
}  // namespace vcfr::emu

// ---- CLI flag parsing (src/cli/args.hpp) ----
//
// The `vcfr` binary's parser lives in the library precisely so these
// tests exercise the shipped behavior: both `--flag value` and
// `--flag=value` spellings, per-subcommand rejection of foreign flags,
// and usage coverage for every subcommand.

#include <stdexcept>
#include <string>
#include <vector>

#include "cli/args.hpp"

namespace vcfr::cli {
namespace {

Args parse(std::vector<std::string> tail) {
  std::vector<std::string> words = {"vcfr", "serve"};
  words.insert(words.end(), tail.begin(), tail.end());
  std::vector<char*> argv;
  argv.reserve(words.size());
  for (std::string& w : words) argv.push_back(w.data());
  return parse_args(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlagsTest, ServeFlagsParseBothSpellings) {
  const Args spaced = parse({"--tenants", "12", "--duration", "5000",
                             "--arrival", "closed", "--interarrival", "250",
                             "--dist", "uniform", "--latency-out", "l.csv"});
  const Args inlined = parse({"--tenants=12", "--duration=5000",
                              "--arrival=closed", "--interarrival=250",
                              "--dist=uniform", "--latency-out=l.csv"});
  for (const Args* a : {&spaced, &inlined}) {
    EXPECT_EQ(a->tenants, 12u);
    EXPECT_EQ(a->duration, 5000u);
    EXPECT_EQ(a->arrival, "closed");
    EXPECT_EQ(a->interarrival, 250u);
    EXPECT_EQ(a->dist, "uniform");
    EXPECT_EQ(a->latency_out, "l.csv");
  }
  EXPECT_EQ(spaced.seen, inlined.seen);
}

TEST(CliFlagsTest, ServeDefaultsMatchDocumented) {
  const Args args = parse({});
  EXPECT_EQ(args.tenants, 8u);
  EXPECT_EQ(args.duration, 200'000u);
  EXPECT_EQ(args.arrival, "open");
  EXPECT_EQ(args.dist, "exp");
  EXPECT_EQ(args.interarrival, 20'000u);
  EXPECT_TRUE(args.latency_out.empty());
}

TEST(CliFlagsTest, ServeAcceptsItsFullFlagSet) {
  const Args args = parse({"--tenants", "8", "--cores", "4", "--duration",
                           "9", "--arrival", "open", "--interarrival", "7",
                           "--dist", "exp", "--workloads", "server",
                           "--scale", "0", "--seed", "1", "--slice", "100",
                           "--drc", "64", "--max-instr", "10",
                           "--restart", "on-fault", "--max-restarts", "2",
                           "--backoff", "4", "--watchdog", "50",
                           "--inject", "0:payload:5", "--json",
                           "--latency-out", "x", "--stats-json", "s"});
  EXPECT_NO_THROW(validate_flags("serve", args));
}

TEST(CliFlagsTest, ServeOnlyFlagsRejectedElsewhere) {
  for (const char* flag :
       {"--tenants=4", "--duration=100", "--arrival=open",
        "--interarrival=50", "--dist=exp", "--latency-out=x"}) {
    const Args args = parse({flag});
    for (const char* cmd : {"fleet", "run", "sim", "faultcamp"}) {
      EXPECT_THROW(validate_flags(cmd, args), std::runtime_error)
          << cmd << " should reject " << flag;
    }
    EXPECT_NO_THROW(validate_flags("serve", args));
  }
}

TEST(CliFlagsTest, ServeRejectsForeignFlags) {
  // --rerand used to be fleet-only but serve now re-randomizes under
  // load, so it no longer belongs in this rejection list.
  for (const char* flag :
       {"--procs=4", "--naive", "--profile-out=p.json", "--trials=3"}) {
    const Args args = parse({flag});
    EXPECT_THROW(validate_flags("serve", args), std::runtime_error)
        << "serve should reject " << flag;
  }
}

TEST(CliFlagsTest, RerandFlagsParseBothSpellings) {
  const Args spaced =
      parse({"--rerand", "4", "--rerand-mode", "incremental",
             "--rerand-on-trap", "--rerand-scope", "fleet",
             "--rerand-max-defer", "3"});
  const Args inlined =
      parse({"--rerand=4", "--rerand-mode=incremental", "--rerand-on-trap",
             "--rerand-scope=fleet", "--rerand-max-defer=3"});
  for (const Args* a : {&spaced, &inlined}) {
    EXPECT_EQ(a->rerand, 4u);
    EXPECT_EQ(a->rerand_mode, "incremental");
    EXPECT_TRUE(a->rerand_on_trap);
    EXPECT_EQ(a->rerand_scope, "fleet");
    EXPECT_EQ(a->rerand_max_defer, 3u);
  }
  EXPECT_EQ(spaced.seen, inlined.seen);
}

TEST(CliFlagsTest, RerandFlagDefaultsMatchLegacy) {
  const Args args = parse({});
  EXPECT_EQ(args.rerand, 0u);
  EXPECT_TRUE(args.rerand_mode.empty());  // empty = full rebuild
  EXPECT_FALSE(args.rerand_on_trap);
  EXPECT_TRUE(args.rerand_scope.empty());  // empty = proc
  EXPECT_EQ(args.rerand_max_defer, 0u);
}

TEST(CliFlagsTest, RerandModeAndScopeRejectUnknownValues) {
  EXPECT_THROW(parse({"--rerand-mode=eager"}), std::runtime_error);
  EXPECT_THROW(parse({"--rerand-scope=core"}), std::runtime_error);
  EXPECT_THROW(parse({"--rerand-on-trap=yes"}), std::runtime_error);
}

TEST(CliFlagsTest, RerandFlagsAcceptedOnFleetAndServeOnly) {
  for (const char* flag :
       {"--rerand=2", "--rerand-mode=incremental", "--rerand-on-trap",
        "--rerand-scope=fleet", "--rerand-max-defer=3"}) {
    const Args args = parse({flag});
    EXPECT_NO_THROW(validate_flags("fleet", args)) << flag;
    EXPECT_NO_THROW(validate_flags("serve", args)) << flag;
    for (const char* cmd : {"run", "sim", "faultcamp", "workload"}) {
      EXPECT_THROW(validate_flags(cmd, args), std::runtime_error)
          << cmd << " should reject " << flag;
    }
  }
}

TEST(CliFlagsTest, UsageCoversRerand) {
  const std::string usage = usage_text();
  for (const char* needle : {"--rerand-mode full|incremental",
                             "--rerand-on-trap", "--rerand-scope proc|fleet",
                             "--rerand-max-defer"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
}

TEST(CliFlagsTest, ObservabilityFlagsParse) {
  const Args args =
      parse({"--trace-capacity", "4096", "--journal-out", "j.jsonl",
             "--slo", "p99:120000", "--slo-window", "25000"});
  EXPECT_EQ(args.trace_capacity, 4096u);
  EXPECT_EQ(args.journal_out, "j.jsonl");
  EXPECT_EQ(args.slo, "p99:120000");
  EXPECT_EQ(args.slo_window, 25'000u);
  EXPECT_NO_THROW(validate_flags("serve", args));

  const Args inlined = parse({"--trace-capacity=4096", "--journal-out=j",
                              "--slo=p50:9", "--slo-window=10"});
  EXPECT_EQ(inlined.trace_capacity, 4096u);
  EXPECT_EQ(inlined.slo, "p50:9");
}

TEST(CliFlagsTest, ObservabilityFlagDefaults) {
  const Args args = parse({});
  EXPECT_EQ(args.trace_capacity, 0u);  // 0 = keep the built-in default
  EXPECT_TRUE(args.journal_out.empty());
  EXPECT_TRUE(args.slo.empty());
  EXPECT_EQ(args.slo_window, 50'000u);
  EXPECT_TRUE(args.trace_in.empty());
}

TEST(CliFlagsTest, SloFlagsAreServeOnly) {
  for (const char* flag : {"--slo=p99:100", "--slo-window=10"}) {
    const Args args = parse({flag});
    for (const char* cmd : {"fleet", "run", "sim", "faultcamp", "workload"}) {
      EXPECT_THROW(validate_flags(cmd, args), std::runtime_error)
          << cmd << " should reject " << flag;
    }
    EXPECT_NO_THROW(validate_flags("serve", args));
  }
}

TEST(CliFlagsTest, TraceCapacityFollowsTraceOut) {
  // Everywhere --trace-out works, --trace-capacity must too.
  const Args args = parse({"--trace-capacity=1024"});
  for (const char* cmd : {"run", "sim", "workload", "fleet", "serve"}) {
    EXPECT_NO_THROW(validate_flags(cmd, args)) << cmd;
  }
  EXPECT_THROW(validate_flags("faultcamp", args), std::runtime_error);
}

TEST(CliFlagsTest, TraceReportWhitelist) {
  const Args ok = parse({"--trace", "t.json", "--top", "5"});
  EXPECT_EQ(ok.trace_in, "t.json");
  EXPECT_EQ(ok.top, 5u);
  EXPECT_NO_THROW(validate_flags("trace-report", ok));
  EXPECT_THROW(validate_flags("trace-report", parse({"--tenants=4"})),
               std::runtime_error);
  EXPECT_THROW(validate_flags("serve", parse({"--trace=t.json"})),
               std::runtime_error);
}

TEST(CliFlagsTest, UsageCoversObservability) {
  const std::string usage = usage_text();
  for (const char* needle :
       {"trace-report", "--slo", "--slo-window", "--journal-out",
        "--trace-capacity"}) {
    EXPECT_NE(usage.find(needle), std::string::npos) << needle;
  }
}

TEST(CliFlagsTest, UnknownFlagAndMissingValueThrow) {
  EXPECT_THROW(parse({"--no-such-flag"}), std::runtime_error);
  EXPECT_THROW(parse({"--tenants"}), std::runtime_error);
  EXPECT_THROW(parse({"--json=yes"}), std::runtime_error);
}

TEST(CliFlagsTest, UsageCoversServe) {
  const std::string usage = usage_text();
  EXPECT_NE(usage.find("serve [--tenants N]"), std::string::npos);
  for (const char* flag : {"--tenants", "--duration", "--arrival",
                           "--interarrival", "--dist", "--latency-out"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace vcfr::cli
