// Tests for the out-of-order core model (§IX future work).
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "emu/emulator.hpp"
#include "sim/ooo.hpp"

namespace vcfr::sim {
namespace {

using binary::Image;

OooConfig quiet() {
  OooConfig c;
  c.mem.dram.t_refi = 0;
  return c;
}

TEST(RegUseTest, CoversImplicitOperands) {
  using isa::Instr;
  using isa::Op;
  const auto push = isa::reg_use(Instr{.op = Op::kPushR, .rd = 3});
  EXPECT_TRUE(push.reads & (1u << 3));
  EXPECT_TRUE(push.reads & (1u << isa::kSp));
  EXPECT_TRUE(push.writes & (1u << isa::kSp));

  const auto cmp = isa::reg_use(Instr{.op = Op::kCmpRR, .rd = 1, .rs = 2});
  EXPECT_TRUE(cmp.writes & isa::kFlagsBit);
  EXPECT_FALSE(cmp.writes & (1u << 1)) << "cmp must not write its operand";

  const auto jcc = isa::reg_use(Instr{.op = Op::kJcc});
  EXPECT_TRUE(jcc.reads & isa::kFlagsBit);

  const auto sys1 = isa::reg_use(Instr{.op = Op::kSys, .imm = 1});
  EXPECT_TRUE(sys1.reads & (1u << 0));
}

// Independent operations: the OOO core must exceed IPC 1.
TEST(OooTest, IndependentOpsExploitIlp) {
  std::string src = ".entry main\nmain:\n  mov r9, 0\nloop:\n";
  for (int i = 1; i <= 6; ++i) {
    src += "  add r" + std::to_string(i) + ", " + std::to_string(i) + "\n";
  }
  src += "  add r9, 1\n  cmp r9, 3000\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);
  const auto r = simulate_ooo(img, 1'000'000, quiet());
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_GT(r.ipc(), 1.5) << "independent adds must issue in parallel";
  EXPECT_LE(r.ipc(), 4.0 + 1e-9);
}

// A serial dependency chain caps IPC near 1 regardless of width.
TEST(OooTest, DependencyChainSerializes) {
  std::string src = ".entry main\nmain:\n  mov r9, 0\nloop:\n";
  for (int i = 0; i < 6; ++i) src += "  add r1, r1\n";
  src += "  add r9, 1\n  cmp r9, 3000\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);
  const auto r = simulate_ooo(img, 1'000'000, quiet());
  ASSERT_TRUE(r.halted);
  // Six chained adds serialize to one per cycle; only the three loop
  // control ops can overlap, capping IPC at 9 instrs / 6 cycles = 1.5.
  EXPECT_LT(r.ipc(), 1.55) << "chained adds cannot run in parallel";
  EXPECT_GT(r.ipc(), 1.2) << "loop control should still overlap the chain";
}

TEST(OooTest, RobSizeLimitsRunahead) {
  // Long-latency divides plus independent work: a tiny ROB stalls.
  std::string src = ".entry main\nmain:\n  mov r9, 0\n  mov r2, 3\nloop:\n"
                    "  or r2, 1\n  mov r1, 1000000\n  div r1, r2\n";
  for (int i = 3; i <= 7; ++i) {
    src += "  add r" + std::to_string(i) + ", 1\n";
  }
  src += "  add r9, 1\n  cmp r9, 1000\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);
  OooConfig small = quiet();
  small.rob_size = 4;
  OooConfig big = quiet();
  big.rob_size = 128;
  const auto r_small = simulate_ooo(img, 1'000'000, small);
  const auto r_big = simulate_ooo(img, 1'000'000, big);
  EXPECT_GT(r_big.ipc(), r_small.ipc() * 1.1);
}

TEST(OooTest, StoreToLoadDependencyHonored) {
  // A load that reads a just-stored word must wait for the store.
  const Image img = isa::assemble(R"(
    .entry main
    .data
    v:
      .word 0
    .text
    main:
      mov r8, @v
      mov r9, 0
    loop:
      add r1, 1
      st r1, [r8]
      ld r2, [r8]
      add r3, r2
      add r9, 1
      cmp r9, 2000
      jlt loop
      out r3
      halt
  )");
  const auto r = simulate_ooo(img, 1'000'000, quiet());
  ASSERT_TRUE(r.halted);
  // The st->ld->add chain plus loop control bounds IPC well below width.
  EXPECT_LT(r.ipc(), 2.5);
}

TEST(OooTest, MatchesGoldenModelFunctionally) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, 5
      call fact
      out r2
      halt
    .func fact
    fact:
      cmp r1, 1
      jgt rec
      mov r2, 1
      ret
    rec:
      push r1
      sub r1, 1
      call fact
      pop r1
      mul r2, r1
      ret
  )");
  const auto r = simulate_ooo(img, 100000, quiet());
  ASSERT_TRUE(r.halted) << r.error;
  const auto golden = emu::run_image(img);
  EXPECT_EQ(r.instructions, golden.stats.instructions);
}

TEST(OooTest, VcfrRunsAndStaysReasonable) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r9, 0
    loop:
      call leaf
      add r9, 1
      cmp r9, 2000
      jlt loop
      halt
    .func leaf
    leaf:
      add r1, 1
      ret
  )");
  rewriter::RandomizeOptions opts;
  opts.seed = 3;
  const auto rr = rewriter::randomize(img, opts);
  const auto base = simulate_ooo(img, 1'000'000, quiet());
  const auto v = simulate_ooo(rr.vcfr, 1'000'000, quiet());
  ASSERT_TRUE(v.halted) << v.error;
  EXPECT_EQ(v.instructions, base.instructions);
  EXPECT_GT(v.ipc(), 0.7 * base.ipc());
  EXPECT_GT(v.drc.lookups, 0u);
}

TEST(OooTest, NaiveIlrStillSlowerThanVcfrOnOoo) {
  // The paper's headline ordering must survive the OOO core too.
  std::string src = ".entry main\nmain:\n  mov r9, 0\nloop:\n";
  for (int i = 0; i < 2000; ++i) {
    src += "  add r1, " + std::to_string(i % 7 + 1) + "\n";
  }
  src += "  add r9, 1\n  cmp r9, 30\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);
  rewriter::RandomizeOptions opts;
  opts.seed = 8;
  const auto rr = rewriter::randomize(img, opts);
  const auto base = simulate_ooo(img, 2'000'000, quiet());
  const auto naive = simulate_ooo(rr.naive, 2'000'000, quiet());
  const auto vcfr = simulate_ooo(rr.vcfr, 2'000'000, quiet());
  ASSERT_TRUE(base.halted);
  ASSERT_TRUE(naive.halted);
  ASSERT_TRUE(vcfr.halted);
  EXPECT_GT(vcfr.ipc(), 1.5 * naive.ipc());
  EXPECT_GT(vcfr.ipc(), 0.85 * base.ipc());
}

TEST(OooTest, WiderThanInOrder) {
  // Sanity: on ILP-rich code the OOO core beats the 1-wide in-order model.
  std::string src = ".entry main\nmain:\n  mov r9, 0\nloop:\n";
  for (int i = 1; i <= 5; ++i) {
    src += "  add r" + std::to_string(i) + ", 7\n  xor r" +
           std::to_string(i) + ", 3\n";
  }
  src += "  add r9, 1\n  cmp r9, 2000\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);
  CpuConfig in_order;
  in_order.mem.dram.t_refi = 0;
  const auto io = simulate(img, 1'000'000, in_order);
  const auto ooo = simulate_ooo(img, 1'000'000, quiet());
  EXPECT_GT(ooo.ipc(), 1.3 * io.ipc());
}

}  // namespace
}  // namespace vcfr::sim
