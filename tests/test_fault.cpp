// Fault-injection subsystem tests: the typed trap model, the seeded
// injector, kernel containment (restart-with-rerandomize, watchdog), and
// the dependability campaign.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <vector>

#include "binary/flat_map.hpp"
#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "os/process.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::fault {
namespace {

// ---------------------------------------------------------------- model --

TEST(FaultModelTest, KindNamesAreStableAndDistinct) {
  const FaultKind kinds[] = {
      FaultKind::kNone,          FaultKind::kBadOpcode,
      FaultKind::kUnmappedFetch, FaultKind::kTranslationMismatch,
      FaultKind::kDivideByZero,  FaultKind::kBadSyscall,
      FaultKind::kWatchdog,      FaultKind::kRerandFailure,
  };
  std::unordered_map<std::string, int> seen;
  for (const FaultKind k : kinds) {
    const std::string name(kind_name(k));
    EXPECT_FALSE(name.empty());
    ++seen[name];
  }
  EXPECT_EQ(seen.size(), std::size(kinds)) << "kind names must be unique";
}

TEST(FaultModelTest, ExitCodesClassifyCrashes) {
  ExitStatus s;
  EXPECT_FALSE(s.crashed());
  s.code = ExitCode::kHalted;
  EXPECT_FALSE(s.crashed());
  s.code = ExitCode::kFaulted;
  EXPECT_TRUE(s.crashed());
  s.code = ExitCode::kWatchdogKill;
  EXPECT_TRUE(s.crashed());
  s.code = ExitCode::kBudget;
  EXPECT_FALSE(s.crashed());
  EXPECT_EQ(exit_name(ExitCode::kHalted), "halted");
  EXPECT_EQ(exit_name(ExitCode::kWatchdogKill), "watchdog_kill");
}

TEST(FaultModelTest, TrapDescribeIsByteStable) {
  Trap ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.describe(), "");

  Trap t;
  t.kind = FaultKind::kTranslationMismatch;
  t.pc = 0x40001234;
  t.detail = 0x1040;
  EXPECT_EQ(t.describe(),
            "randomized-tag violation: transfer to 0x1040 (pc=0x40001234)");
}

TEST(FaultSiteTest, SiteNamesRoundTrip) {
  for (const FaultSite site :
       {FaultSite::kCodeByte, FaultSite::kTranslationEntry,
        FaultSite::kRetSlot, FaultSite::kRetBitmap, FaultSite::kPayload}) {
    const auto back = parse_site(site_name(site));
    ASSERT_TRUE(back.has_value()) << site_name(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(parse_site("alpha_particle").has_value());
}

// ------------------------------------------------------------- injector --

TEST(InjectorTest, DueFiresOnceAtTheBoundary) {
  FaultPlan plan;
  plan.at_instruction = 500;
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.due(499));
  EXPECT_TRUE(inj.due(500));
  EXPECT_TRUE(inj.due(501));
}

/// Runs a fresh bzip2/VCFR emulator to `steps` retired instructions and
/// applies `plan`, returning the injection record.
InjectionRecord inject_once(const FaultPlan& plan, uint64_t steps) {
  const binary::Image original = workloads::make("bzip2", 0);
  rewriter::RandomizeOptions opts;
  opts.seed = 9;
  const auto rr = rewriter::randomize(original, opts);
  binary::Image image = rr.vcfr;  // mutable: table corruption rewrites it
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emu(image, mem);
  emu.set_enforce_tags(true);
  for (uint64_t i = 0; i < steps; ++i) {
    if (!emu.step()) break;
  }
  FaultInjector inj(plan);
  inj.apply(image, mem, emu, &original);
  EXPECT_TRUE(inj.attempted());
  return inj.record();
}

TEST(InjectorTest, SelectionIsDeterministic) {
  for (const FaultSite site :
       {FaultSite::kCodeByte, FaultSite::kTranslationEntry,
        FaultSite::kRetSlot, FaultSite::kPayload}) {
    FaultPlan plan;
    plan.at_instruction = 1000;
    plan.site = site;
    plan.seed = 77;
    const InjectionRecord a = inject_once(plan, 1000);
    const InjectionRecord b = inject_once(plan, 1000);
    if (site != FaultSite::kRetSlot) {
      // ret_slot legitimately finds no target when the victim happens to
      // have no live call frame at the injection instant.
      EXPECT_TRUE(a.applied) << site_name(site);
    }
    EXPECT_EQ(a.applied, b.applied) << site_name(site);
    EXPECT_EQ(a.address, b.address) << site_name(site);
    EXPECT_EQ(a.bit, b.bit) << site_name(site);
    EXPECT_EQ(a.note, b.note) << site_name(site);
  }
}

TEST(InjectorTest, SeedSelectsDifferentTargets) {
  // Not a tautology for every pair of seeds, but these two must differ for
  // the campaign's per-trial seeding to mean anything.
  FaultPlan a;
  a.at_instruction = 1000;
  a.site = FaultSite::kCodeByte;
  a.seed = 1;
  FaultPlan b = a;
  b.seed = 2;
  const InjectionRecord ra = inject_once(a, 1000);
  const InjectionRecord rb = inject_once(b, 1000);
  EXPECT_TRUE(ra.applied);
  EXPECT_TRUE(rb.applied);
  EXPECT_TRUE(ra.address != rb.address || ra.bit != rb.bit);
}

// ---------------------------------------------- satellite: Process::bind --

TEST(ProcessTest, RerandomizeBeforeBindIsTypedFaultNotThrow) {
  os::ProcessConfig config;
  config.workload = "bzip2";
  config.scale = 0;
  os::Process proc(0, config);
  bool ok = true;
  EXPECT_NO_THROW(ok = proc.try_rerandomize());
  EXPECT_FALSE(ok);
  EXPECT_EQ(proc.exit_status().code, ExitCode::kFaulted);
  EXPECT_EQ(proc.exit_status().trap.kind, FaultKind::kRerandFailure);
  EXPECT_TRUE(proc.exit_status().crashed());
}

// ------------------------------------- satellite: ret-bitmap corruption --

// A PIC-style callee that *reads* its return address through the §IV-C
// bitmap path. The clean run sees the original-space return address on
// every layout (auto-de-randomization on VCFR, the plain value on native)
// and takes the `fin` path. When the slot's bitmap mark is dropped, the
// VCFR load yields the raw randomized address (high half nonzero), and the
// victim forges an original-space in-code target from it — exactly the
// transfer the randomized-tag check (§IV-A) must refuse. Native has no
// architectural bitmap, so the same corruption changes nothing: the run
// completes with clean output — the silent case.
//
// The forged base is built as 0x800+0x800 on purpose: a literal 0x1000 is
// an instruction-start constant, which the static analysis would treat as
// a computed-dispatch base and pessimistically un-randomize the enclosing
// window, destroying the bitmap mark this test is about.
constexpr const char* kBitmapVictim = R"(
  .name bitmapvic
  .entry main
  .func main
  main:
    mov r1, 6
    call f
    out r1
    halt
  .func f
  f:
    mul r1, r1
    ld r2, [sp]      ; auto-de-randomized when the slot is marked (s IV-C)
    shr r2, 16
    cmp r2, 0
    jeq fin          ; original-space return address -> high half is zero
    ld r2, [sp]      ; mark lost: the raw randomized return address
    and r2, 0x1f
    add r2, 0x800
    add r2, 0x800    ; forge an original-space in-code target
    jmpr r2          ; VCFR must trap; native never reaches this path
  fin:
    ret
)";

struct BitmapRun {
  emu::RunResult result;
  bool mark_was_present = false;
};

/// Steps past `call f; mul` (3 instructions), optionally flips the bitmap
/// state of the return slot, and runs to completion.
BitmapRun run_bitmap_victim(const binary::Image& image, bool corrupt) {
  binary::Memory mem;
  binary::load(image, mem);
  emu::Emulator emu(image, mem);
  emu.set_enforce_tags(true);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(emu.step());
  BitmapRun out;
  if (corrupt) {
    const uint32_t slot = emu.state().regs[isa::kSp];
    out.mark_was_present = emu.corrupt_ret_bitmap(slot);
  }
  out.result = emu.run();
  return out;
}

TEST(RetBitmapTest, DroppedMarkTrapsOnVcfrAndIsSilentOnNative) {
  const binary::Image original = isa::assemble(kBitmapVictim);
  // The forged target range [0x1000, 0x101f] must stay inside the code.
  ASSERT_GE(original.code.size(), 0x20u);

  rewriter::RandomizeOptions opts;
  opts.seed = 2015;
  const auto rr = rewriter::randomize(original, opts);
  // The design depends on nothing leaking into the failover set: the
  // return site after `call f` must be randomized so the call leaves a
  // bitmap mark, and the forged target must not be exempt from the tag
  // check.
  ASSERT_TRUE(rr.vcfr.tables.unrandomized.empty());

  // Clean runs agree on every layout.
  const BitmapRun native_clean = run_bitmap_victim(original, false);
  const BitmapRun vcfr_clean = run_bitmap_victim(rr.vcfr, false);
  ASSERT_TRUE(native_clean.result.halted) << native_clean.result.error;
  ASSERT_TRUE(vcfr_clean.result.halted) << vcfr_clean.result.error;
  EXPECT_EQ(native_clean.result.output, std::vector<uint32_t>{36});
  EXPECT_EQ(vcfr_clean.result.output, native_clean.result.output);
  EXPECT_GE(vcfr_clean.result.stats.bitmap_autoderand_loads, 1u);

  // Same corruption, same instant, both layouts.
  const BitmapRun vcfr_bad = run_bitmap_victim(rr.vcfr, true);
  EXPECT_TRUE(vcfr_bad.mark_was_present)
      << "the call must have marked the return slot";
  EXPECT_FALSE(vcfr_bad.result.halted);
  EXPECT_EQ(vcfr_bad.result.trap.kind, FaultKind::kTranslationMismatch)
      << vcfr_bad.result.error;
  EXPECT_TRUE(rr.vcfr.in_code(vcfr_bad.result.trap.detail));

  const BitmapRun native_bad = run_bitmap_victim(original, true);
  EXPECT_FALSE(native_bad.mark_was_present) << "native has no marks to drop";
  ASSERT_TRUE(native_bad.result.halted) << native_bad.result.error;
  EXPECT_TRUE(native_bad.result.trap.ok());
  EXPECT_EQ(native_bad.result.output, native_clean.result.output)
      << "the corruption must pass silently on native";
}

// ------------------------------------------------- kernel containment --

os::ProcessConfig fleet_proc(const std::string& workload, uint64_t seed) {
  os::ProcessConfig pc;
  pc.workload = workload;
  pc.scale = 0;
  pc.seed = seed;
  return pc;
}

TEST(FleetContainmentTest, InjectedFaultRestartsVictimOthersBitIdentical) {
  const std::vector<std::string> workloads = {"bzip2", "libquantum", "hmmer",
                                              "sjeng"};
  os::KernelConfig kc;
  kc.cores = 4;
  kc.measure_isolated = false;

  // Baseline: the uninjected fleet.
  os::Kernel base(kc);
  for (size_t i = 0; i < workloads.size(); ++i) {
    base.spawn(fleet_proc(workloads[i], 11 * (i + 1)));
  }
  const os::FleetReport base_report = base.run();
  ASSERT_EQ(base_report.injected_faults, 0u);
  ASSERT_EQ(base_report.restarts, 0u);

  // Same fleet, pid 1 armed with a payload injection and a
  // restart-on-fault policy.
  os::Kernel kernel(kc);
  for (size_t i = 0; i < workloads.size(); ++i) {
    os::ProcessConfig pc = fleet_proc(workloads[i], 11 * (i + 1));
    pc.restart.mode = os::RestartPolicy::Mode::kOnFault;
    pc.restart.backoff_rounds = 2;
    if (i == 1) {
      pc.inject.site = FaultSite::kPayload;
      pc.inject.at_instruction = 5000;
      pc.inject.seed = 3;
      pc.inject_enabled = true;
    }
    kernel.spawn(pc);
  }
  // Snapshot the victim's first-life placement before running.
  const binary::FlatMap32 first_life_derand =
      kernel.randomization(1).vcfr.tables.derand;

  const os::FleetReport report = kernel.run();

  // Containment: exactly one injection took effect, the victim crashed on
  // the tag check and came back once, nobody else was touched.
  EXPECT_EQ(report.injected_faults, 1u);
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_EQ(report.watchdog_kills, 0u);
  const os::ProcessReport& victim = report.processes[1];
  EXPECT_TRUE(victim.injected);
  EXPECT_EQ(victim.restarts, 1u);
  EXPECT_EQ(victim.exit, "halted") << "the restarted life must complete";
  EXPECT_GE(kernel.process(1).epoch(), 1u);

  // Restart-with-rerandomize: the replacement runs a fresh placement.
  EXPECT_FALSE(kernel.randomization(1).vcfr.tables.derand ==
               first_life_derand);

  // The other tenants' architectural results are bit-identical to the
  // uninjected fleet — the fault never leaked across processes. The
  // restarted victim also converges to the clean result.
  for (const uint32_t pid : {0u, 1u, 2u, 3u}) {
    EXPECT_EQ(kernel.process(pid).emulator().output(),
              base.process(pid).emulator().output())
        << "pid " << pid;
    EXPECT_EQ(report.processes[pid].exit, "halted") << "pid " << pid;
  }
  for (const uint32_t pid : {0u, 2u, 3u}) {
    EXPECT_EQ(report.processes[pid].instructions,
              base_report.processes[pid].instructions)
        << "pid " << pid;
    EXPECT_FALSE(report.processes[pid].injected) << "pid " << pid;
    EXPECT_EQ(report.processes[pid].restarts, 0u) << "pid " << pid;
  }
}

TEST(FleetContainmentTest, WatchdogKillsRunawayProcess) {
  os::KernelConfig kc;
  kc.cores = 1;
  kc.measure_isolated = false;
  // The watchdog is checked at slice boundaries; a short slice pins the
  // kill near the budget instead of at the default 50k granularity.
  kc.sched.slice_instructions = 5'000;
  os::Kernel kernel(kc);
  os::ProcessConfig pc = fleet_proc("bzip2", 5);
  pc.watchdog_instructions = 10'000;  // far below bzip2's clean runtime
  kernel.spawn(pc);
  const os::FleetReport report = kernel.run();

  EXPECT_EQ(report.watchdog_kills, 1u);
  EXPECT_EQ(kernel.watchdog_kills(), 1u);
  const os::ProcessReport& proc = report.processes[0];
  EXPECT_EQ(proc.exit, "watchdog_kill");
  EXPECT_EQ(proc.fault_kind, "watchdog");
  EXPECT_EQ(kernel.process(0).exit_status().trap.kind, FaultKind::kWatchdog);
  // The kill lands within one slice of the watchdog boundary, not merely
  // "eventually".
  EXPECT_GE(proc.instructions, 10'000u);
  EXPECT_LT(proc.instructions, 15'000u);
}

TEST(FleetContainmentTest, WatchdogKillRestartsUnderOnFaultPolicy) {
  os::KernelConfig kc;
  kc.cores = 1;
  kc.measure_isolated = false;
  kc.sched.slice_instructions = 5'000;
  os::Kernel kernel(kc);
  os::ProcessConfig pc = fleet_proc("bzip2", 5);
  pc.watchdog_instructions = 10'000;
  pc.restart.mode = os::RestartPolicy::Mode::kOnFault;
  pc.restart.max_restarts = 2;
  pc.restart.backoff_rounds = 1;
  kernel.spawn(pc);
  const os::FleetReport report = kernel.run();

  // Every life trips the same watchdog, so the cap must stop the cycle.
  EXPECT_EQ(report.restarts, 2u);
  EXPECT_EQ(report.watchdog_kills, 3u);
  EXPECT_EQ(report.processes[0].exit, "watchdog_kill");
}

// ------------------------------------------------------------ campaign --

TEST(CampaignTest, ReportIsDeterministicAndVcfrDetectsMore) {
  CampaignConfig config;
  config.workloads = {"bzip2", "libquantum"};
  config.scale = 0;
  config.trials = 2;
  config.seed = 7;
  config.max_instructions = 2'000'000;

  const CampaignReport a = run_campaign(config);
  const CampaignReport b = run_campaign(config);
  EXPECT_EQ(a.to_json(), b.to_json());

  ASSERT_GT(a.total.trials, 0u);
  ASSERT_GT(a.total.applied, 0u);
  const OutcomeCounts* native = a.layout_counts("native");
  const OutcomeCounts* vcfr = a.layout_counts("vcfr");
  ASSERT_NE(native, nullptr);
  ASSERT_NE(vcfr, nullptr);
  // The paper's dependability claim, quantitatively: randomization turns
  // corruption into detected crashes native lets slide.
  EXPECT_GT(vcfr->detection_rate(), native->detection_rate());
  EXPECT_GT(vcfr->containment_rate(), native->containment_rate());

  // Detection-latency histogram is populated and consistent.
  EXPECT_GT(a.latency_count, 0u);
  uint64_t bucket_total = 0;
  for (const uint64_t n : a.latency_buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, a.latency_count);
  EXPECT_GE(a.latency_max, 1u);
  EXPECT_GE(a.latency_sum, a.latency_max);

  // Per-trial records survive into the report (keep_trials default).
  EXPECT_EQ(a.trials.size(), a.total.trials);
}

}  // namespace
}  // namespace vcfr::fault
