// Continuous re-randomization under load (ARCHITECTURE.md §15).
//
// The incremental rebuild and epoch-tagged invalidation are *timing*
// reorganizations of the §V-C live re-randomization: they may change
// when cycles are spent, but never what the programs compute. These
// differentials pin that down — incremental vs full rebuild, epoch tags
// vs eager flush, across seeds and under fault injection — and verify
// the trap-triggered and forced-quiescence paths through the journal.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "os/kernel.hpp"
#include "telemetry/telemetry.hpp"

namespace vcfr::os {
namespace {

constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ull;

KernelConfig small_fleet(uint32_t cores) {
  KernelConfig kc;
  kc.cores = cores;
  kc.sched.slice_instructions = 2'000;
  kc.measure_isolated = true;  // every proc self-checks vs its solo run
  return kc;
}

ProcessConfig tenant(const char* workload, uint64_t seed,
                     const RerandomizePolicy& rp) {
  ProcessConfig pc;
  pc.workload = workload;
  pc.scale = 0;
  pc.seed = seed;
  pc.max_instructions = 20'000;
  pc.rerandomize = rp;
  return pc;
}

void spawn_mix(Kernel& kernel, uint32_t procs, uint64_t seed,
               const RerandomizePolicy& rp, bool inject_pid1 = false) {
  const char* mix[] = {"bzip2", "gcc", "mcf", "hmmer"};
  for (uint32_t i = 0; i < procs; ++i) {
    ProcessConfig pc = tenant(mix[i % 4], seed ^ (kSeedMix * (i + 1)), rp);
    if (inject_pid1) {
      pc.restart.mode = RestartPolicy::Mode::kOnFault;
      pc.restart.backoff_rounds = 2;
      if (i == 1) {
        pc.inject.site = fault::FaultSite::kPayload;
        pc.inject.at_instruction = 5'000;
        pc.inject.seed = 3;
        pc.inject_enabled = true;
      }
    }
    kernel.spawn(pc);
  }
}

RerandomizePolicy periodic(uint32_t every,
                           RerandomizePolicy::Rebuild rebuild,
                           bool epoch_tags = false) {
  RerandomizePolicy rp;
  rp.every_slices = every;
  rp.rebuild = rebuild;
  rp.epoch_tags = epoch_tags;
  rp.max_defer = 4;
  return rp;
}

/// The architectural outcome of a fleet run, one line per process —
/// everything a rebuild-mode change must NOT move. Timing-dependent
/// fields (cycles, flush losses, deferral counts) are deliberately
/// absent; placement-dependent ones (trap pc) too.
std::string arch_signature(const FleetReport& report) {
  std::ostringstream out;
  for (const ProcessReport& p : report.processes) {
    out << p.pid << ' ' << p.workload << ' ' << p.instructions << ' '
        << p.exit << ' ' << p.fault_kind << ' ' << p.halted << ' '
        << p.restarts << ' ' << p.arch_match << '\n';
  }
  return out.str();
}

FleetReport run_mix(const RerandomizePolicy& rp, uint64_t seed,
                    bool inject_pid1 = false, uint32_t cores = 2) {
  Kernel kernel(small_fleet(cores));
  spawn_mix(kernel, 4, seed, rp, inject_pid1);
  return kernel.run();
}

// ------------------------------------------ incremental differentials --

// Incremental rebuild patches a subset of pages against the previous
// placement instead of swapping the whole image; the architectural
// results must be byte-identical to the full rebuild across seeds, and
// every process must still match its isolated solo run.
TEST(RerandDifferentialTest, IncrementalMatchesFullArchResults) {
  using Rebuild = RerandomizePolicy::Rebuild;
  for (const uint64_t seed : {7ull, 1234ull}) {
    const FleetReport full = run_mix(periodic(4, Rebuild::kFull), seed);
    const FleetReport inc =
        run_mix(periodic(4, Rebuild::kIncremental, true), seed);
    EXPECT_EQ(arch_signature(full), arch_signature(inc)) << "seed " << seed;
    EXPECT_GT(inc.rerandomizations, 0u);
    EXPECT_GT(inc.rerand_entries_patched, 0u);
    for (const ProcessReport& p : inc.processes) {
      EXPECT_TRUE(p.arch_match) << "pid " << p.pid << " seed " << seed;
    }
  }
}

// Same with a live corruption + restart in the mix: the injected trap,
// the re-imaged replacement, and the post-restart firings must land on
// identical architectural outcomes in both modes.
TEST(RerandDifferentialTest, IncrementalMatchesFullUnderInjection) {
  using Rebuild = RerandomizePolicy::Rebuild;
  const FleetReport full = run_mix(periodic(4, Rebuild::kFull), 7, true);
  const FleetReport inc =
      run_mix(periodic(4, Rebuild::kIncremental, true), 7, true);
  EXPECT_EQ(arch_signature(full), arch_signature(inc));
  EXPECT_EQ(full.injected_faults, 1u);
  EXPECT_EQ(inc.injected_faults, 1u);
  EXPECT_GT(inc.restarts, 0u);
}

// Epoch tags keep warm DRC/decode state across a firing instead of
// flushing it eagerly: cheaper, never different. The tagged run must
// produce the same architectural results while flushing strictly fewer
// translations. One proc per core — with time-slicing the next context
// switch would flush the same entries anyway and merely re-attribute
// the loss, so the pinned shape is where the tags actually pay.
TEST(RerandDifferentialTest, EpochTagsPreserveArchAndSkipFlushes) {
  using Rebuild = RerandomizePolicy::Rebuild;
  const FleetReport flushed =
      run_mix(periodic(4, Rebuild::kIncremental, false), 7, false, 4);
  const FleetReport tagged =
      run_mix(periodic(4, Rebuild::kIncremental, true), 7, false, 4);
  EXPECT_EQ(arch_signature(flushed), arch_signature(tagged));
  EXPECT_GT(flushed.rerandomizations, 0u);
  EXPECT_GT(flushed.drc_entries_flushed, 0u)
      << "eager-flush control must actually flush";
  EXPECT_LT(tagged.drc_entries_flushed, flushed.drc_entries_flushed);
}

// The simulated rewrite cost (rerand_cost_per_entry) stalls the victim
// core but is invisible architecturally.
TEST(RerandDifferentialTest, RerandCostChargesCyclesNotSemantics) {
  using Rebuild = RerandomizePolicy::Rebuild;
  const RerandomizePolicy rp = periodic(4, Rebuild::kIncremental, true);
  KernelConfig kc = small_fleet(2);
  Kernel free_kernel(kc);
  spawn_mix(free_kernel, 4, 7, rp);
  const FleetReport free_run = free_kernel.run();

  kc.rerand_cost_per_entry = 8;
  Kernel paid_kernel(kc);
  spawn_mix(paid_kernel, 4, 7, rp);
  const FleetReport paid_run = paid_kernel.run();

  EXPECT_EQ(arch_signature(free_run), arch_signature(paid_run));
  EXPECT_GT(paid_run.fleet_cycles, free_run.fleet_cycles)
      << "patching " << paid_run.rerand_entries_patched
      << " entries must cost cycles";
}

// --------------------------------------------------- forced quiescence --

// With max_defer set, a firing that keeps hitting non-quiescent points
// (a register holding a randomized-space address) eventually proceeds
// anyway, keeping the held addresses alive as derand aliases — and the
// kernel journals every forced swap.
TEST(RerandForcedTest, DeferralCapForcesQuiescence) {
  telemetry::TelemetryConfig tc;
  tc.journal = true;
  telemetry::Telemetry tel(tc);

  RerandomizePolicy rp =
      periodic(1, RerandomizePolicy::Rebuild::kIncremental, true);
  rp.max_defer = 2;  // one deferral allowed, a second consecutive forces
  KernelConfig kc = small_fleet(2);
  // Short slices sample many mid-call boundaries, so firings frequently
  // land on a register-held randomized address (a non-quiescent point).
  kc.sched.slice_instructions = 513;
  Kernel kernel(kc);
  kernel.attach_telemetry(&tel);
  spawn_mix(kernel, 4, 7, rp);
  const FleetReport report = kernel.run();

  uint64_t deferred = 0;
  for (const ProcessReport& p : report.processes) {
    deferred += p.rerandomizations_deferred;
  }
  ASSERT_GT(deferred, 0u) << "mix never hit a non-quiescent point; the "
                             "forced path was not exercised";
  EXPECT_GT(kernel.rerand_forced(), 0u);
  EXPECT_EQ(report.rerand_forced, kernel.rerand_forced());

  uint64_t journaled = 0;
  for (const telemetry::JournalEntry& e : tel.journal()->entries()) {
    if (e.kind == telemetry::JournalKind::kRerandForced) ++journaled;
  }
  EXPECT_EQ(journaled, kernel.rerand_forced());
}

// ------------------------------------------------------ re-rand-on-trap --

struct TrapTrial {
  FleetReport report;
  std::vector<telemetry::JournalEntry> journal;
};

TrapTrial trap_trial(bool on_trap, RerandomizePolicy::Scope scope) {
  telemetry::TelemetryConfig tc;
  tc.journal = true;
  telemetry::Telemetry tel(tc);

  Kernel kernel(small_fleet(2));
  kernel.attach_telemetry(&tel);
  // gcc halts well inside the budget, so a recovered victim finishes;
  // the payload pivot trips the §IV-A detector (translation mismatch)
  // the moment it fires.
  const char* mix[] = {"gcc", "bzip2"};
  for (uint32_t i = 0; i < 2; ++i) {
    ProcessConfig pc;
    pc.workload = mix[i];
    pc.scale = 0;
    pc.seed = 7 ^ (kSeedMix * (i + 1));
    pc.max_instructions = 40'000;
    pc.rerandomize.rebuild = RerandomizePolicy::Rebuild::kIncremental;
    pc.rerandomize.epoch_tags = true;
    pc.rerandomize.on_trap = on_trap;
    pc.rerandomize.scope = scope;
    pc.rerandomize.max_defer = 4;
    // No restart policy of its own: only the trap-triggered fresh
    // placement can bring the victim back.
    if (i == 0) {
      pc.inject.site = fault::FaultSite::kPayload;
      pc.inject.at_instruction = 5'000;
      pc.inject.seed = 3;
      pc.inject_enabled = true;
    }
    kernel.spawn(pc);
  }
  TrapTrial out;
  out.report = kernel.run();
  out.journal = tel.journal()->entries();
  return out;
}

// Without --rerand-on-trap a victim with no restart policy stays down
// after the attack-signal trap. With it, the trap itself schedules a
// fresh placement: the journal must show the kFault immediately answered
// by a kRestart for the same pid, and the victim must finish its work.
TEST(RerandOnTrapTest, TrapIsAnsweredByFreshPlacement) {
  const TrapTrial off = trap_trial(false, RerandomizePolicy::Scope::kProc);
  ASSERT_EQ(off.report.processes[0].exit, "faulted")
      << "injection must down the victim in the control run";
  EXPECT_EQ(off.report.processes[0].restarts, 0u);

  const TrapTrial on = trap_trial(true, RerandomizePolicy::Scope::kProc);
  EXPECT_EQ(on.report.processes[0].exit, "halted")
      << "on-trap re-rand must recover the victim";
  EXPECT_GE(on.report.processes[0].restarts, 1u);

  // Journal ordering: every attack-signal kFault for pid 0 is followed
  // by a kRestart for pid 0 (the fresh placement) before the run ends.
  bool fault_seen = false;
  bool answered = false;
  for (const telemetry::JournalEntry& e : on.journal) {
    if (e.pid != 0) continue;
    if (e.kind == telemetry::JournalKind::kFault) {
      fault_seen = true;
      answered = false;
    } else if (fault_seen && e.kind == telemetry::JournalKind::kRestart) {
      answered = true;
    }
  }
  EXPECT_TRUE(fault_seen);
  EXPECT_TRUE(answered) << "a trap was never answered by a restart";
}

// Fleet scope: the victim's trap also schedules a swap for every live
// co-tenant, even one with no periodic policy of its own.
TEST(RerandOnTrapTest, FleetScopeMovesCoTenants) {
  const TrapTrial proc = trap_trial(true, RerandomizePolicy::Scope::kProc);
  EXPECT_EQ(proc.report.processes[1].rerandomizations, 0u)
      << "proc scope must leave the co-tenant's placement alone";

  const TrapTrial fleet = trap_trial(true, RerandomizePolicy::Scope::kFleet);
  EXPECT_GE(fleet.report.processes[1].rerandomizations, 1u)
      << "fleet scope must move the co-tenant too";
  EXPECT_EQ(fleet.report.processes[0].exit, "halted")
      << "the fleet-wide swap must not cost the victim its recovery";
}

}  // namespace
}  // namespace vcfr::os
