// Memory-model and loader tests: paging semantics, boundary straddles,
// checksum stability, and the serialized translation-table layout.
#include <gtest/gtest.h>

#include "binary/loader.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::binary {
namespace {

TEST(MemoryTest, UnwrittenBytesReadZero) {
  Memory mem;
  EXPECT_EQ(mem.read8(0x12345678), 0);
  EXPECT_EQ(mem.read32(0xdeadbeef), 0u);
  EXPECT_EQ(mem.pages_allocated(), 0u);
}

TEST(MemoryTest, ByteAndWordRoundTrip) {
  Memory mem;
  mem.write32(0x1000, 0xa1b2c3d4);
  EXPECT_EQ(mem.read32(0x1000), 0xa1b2c3d4u);
  EXPECT_EQ(mem.read8(0x1000), 0xd4);  // little-endian
  EXPECT_EQ(mem.read8(0x1003), 0xa1);
  mem.write8(0x1001, 0xff);
  EXPECT_EQ(mem.read32(0x1000), 0xa1b2ffd4u);
}

TEST(MemoryTest, WordStraddlingPageBoundary) {
  Memory mem;
  const uint32_t addr = Memory::kPageSize - 2;
  mem.write32(addr, 0x11223344);
  EXPECT_EQ(mem.read32(addr), 0x11223344u);
  EXPECT_EQ(mem.pages_allocated(), 2u);
  EXPECT_EQ(mem.read8(Memory::kPageSize), 0x22);
}

TEST(MemoryTest, ReadBlockCrossesPages) {
  Memory mem;
  for (uint32_t i = 0; i < 8; ++i) {
    mem.write8(Memory::kPageSize - 4 + i, static_cast<uint8_t>(i + 1));
  }
  uint8_t buf[8];
  mem.read_block(Memory::kPageSize - 4, buf, 8);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(buf[i], i + 1);
}

TEST(MemoryTest, ChecksumIsOrderIndependentAndContentSensitive) {
  Memory a, b;
  a.write8(0x1000, 7);
  a.write8(0x905000, 9);
  b.write8(0x905000, 9);  // same bytes, opposite touch order
  b.write8(0x1000, 7);
  EXPECT_EQ(a.checksum(), b.checksum());
  b.write8(0x1000, 8);
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(LoaderTest, LoadsAllThreeLayouts) {
  const Image original = isa::assemble(R"(
    .entry main
    .data 0x10000000
    v:
      .word 0xcafe
    .text
    main:
      mov r1, 1
      halt
  )");
  Memory m0;
  load(original, m0);
  EXPECT_EQ(m0.read8(original.code_base),
            static_cast<uint8_t>(isa::Op::kMovRI));
  EXPECT_EQ(m0.read32(0x10000000), 0xcafeu);

  const auto rr = rewriter::randomize(original, {});
  Memory m1;
  load(rr.naive, m1);
  // The original code location is vacated; instructions live at their
  // randomized addresses.
  bool found = false;
  for (const auto& [addr, bytes] : rr.naive.sparse_code) {
    if (!bytes.empty() && m1.read8(addr) == bytes[0]) found = true;
  }
  EXPECT_TRUE(found);

  Memory m2;
  load(rr.vcfr, m2);
  EXPECT_EQ(m2.read8(rr.vcfr.code_base),
            static_cast<uint8_t>(isa::Op::kMovRI));
  // Serialized tables occupy their pages.
  ASSERT_GT(rr.vcfr.tables.table_bytes, 0u);
  bool any_table_byte = false;
  for (uint32_t off = 0; off < rr.vcfr.tables.table_bytes && !any_table_byte;
       off += 4) {
    any_table_byte = m2.read32(rr.vcfr.tables.table_base + off) != 0;
  }
  EXPECT_TRUE(any_table_byte);
}

TEST(LoaderTest, TableEntryAddrStaysInsideTable) {
  TranslationTables tables;
  tables.table_base = 0x60000000;
  tables.table_bytes = 1 << 12;  // 512 slots
  for (uint32_t k = 0; k < 10000; ++k) {
    const uint32_t e = table_entry_addr(tables, k * 2654435761u);
    EXPECT_GE(e, tables.table_base);
    EXPECT_LT(e + 8, tables.table_base + tables.table_bytes + 8);
    EXPECT_EQ((e - tables.table_base) % 8, 0u);
  }
}

TEST(ImageTest, DataAccessorsBoundsChecked) {
  Image img;
  img.data_base = 0x1000;
  img.data.resize(8, 0);
  img.write_data32(0x1004, 42);
  EXPECT_EQ(img.read_data32(0x1004), 42u);
  EXPECT_THROW((void)img.read_data32(0x0ffc), std::out_of_range);
  EXPECT_THROW((void)img.read_data32(0x1006), std::out_of_range);
  EXPECT_THROW(img.write_data32(0x1008, 1), std::out_of_range);
}

TEST(ImageTest, TranslationTableHelpers) {
  TranslationTables t;
  t.derand[0x40000000] = 0x1000;
  t.rand[0x1000] = 0x40000000;
  t.unrandomized.insert(0x2000);
  EXPECT_EQ(t.to_original(0x40000000), 0x1000u);
  EXPECT_EQ(t.to_original(0x2000), 0x2000u);  // identity fallback
  EXPECT_EQ(t.to_randomized(0x1000), 0x40000000u);
  EXPECT_EQ(t.to_randomized(0x3000), 0x3000u);
  EXPECT_TRUE(t.is_randomized_addr(0x40000000));
  EXPECT_FALSE(t.is_randomized_addr(0x1000));
}

}  // namespace
}  // namespace vcfr::binary
