// Request observability (ARCHITECTURE.md §13): per-request critical-path
// conservation, Chrome flow-event matching, the flight-recorder journal,
// the rolling-window SLO monitor, and the observer-neutrality contract —
// attaching telemetry must not move a single simulated cycle.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace vcfr::serve {
namespace {

using telemetry::JournalEntry;
using telemetry::JournalKind;
using telemetry::Telemetry;
using telemetry::TelemetryConfig;
using telemetry::TraceEvent;
using telemetry::TraceEventType;

ServeConfig small_config() {
  ServeConfig sc;
  sc.tenants = 8;
  sc.cores = 4;
  sc.duration = 100'000;
  sc.mean_interarrival = 10'000;
  sc.seed = 7;
  return sc;
}

ServeConfig inject_config() {
  ServeConfig sc;
  sc.tenants = 4;
  sc.cores = 2;
  sc.duration = 100'000;
  sc.mean_interarrival = 5'000;
  sc.seed = 7;
  sc.restart.mode = os::RestartPolicy::Mode::kOnFault;
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kCodeByte;
  plan.at_instruction = 50;
  plan.seed = 3;
  sc.injections.emplace_back(2u, plan);
  return sc;
}

TelemetryConfig full_telemetry() {
  TelemetryConfig tc;
  tc.trace = true;
  tc.journal = true;
  return tc;
}

// ---- conservation -------------------------------------------------------

// The tentpole invariant: the four critical-path components tile every
// request's latency exactly, across the whole config matrix (clean runs,
// closed loop, injected faults with restart, injected faults that take
// the tenant down).
TEST(ReqTraceTest, SpanConservationAcrossSuite) {
  std::vector<ServeConfig> configs;
  configs.push_back(small_config());
  {
    ServeConfig sc = small_config();
    sc.model = ArrivalModel::kClosed;
    configs.push_back(sc);
  }
  configs.push_back(inject_config());
  {
    ServeConfig sc = inject_config();
    sc.restart.mode = os::RestartPolicy::Mode::kNever;  // tenant goes down
    configs.push_back(sc);
  }
  for (const ServeConfig& sc : configs) {
    const ServeReport r = run_serve(sc);
    ASSERT_GT(r.generated, 0u);
    for (const TenantReport& t : r.tenants) {
      for (const RequestRecord& rec : t.records) {
        const uint64_t latency = rec.completion - rec.arrival;
        EXPECT_EQ(rec.queue_cycles + rec.run_cycles +
                      rec.restart_loss_cycles + rec.commit_stall_cycles,
                  latency)
            << "tenant " << t.pid << " request " << rec.id;
      }
    }
  }
}

TEST(ReqTraceTest, FailedRequestsHaveNoRestartLoss) {
  ServeConfig sc = inject_config();
  sc.restart.mode = os::RestartPolicy::Mode::kNever;
  const ServeReport r = run_serve(sc);
  ASSERT_GT(r.failed, 0u);
  for (const TenantReport& t : r.tenants) {
    for (const RequestRecord& rec : t.records) {
      // A failed request *is* the crash: its completion stamp is the
      // down-interval's start, so no downtime can overlap it.
      if (rec.failed) {
        EXPECT_EQ(rec.restart_loss_cycles, 0u);
      }
    }
  }
}

TEST(ReqTraceTest, RestartLossAppearsAfterRecovery) {
  const ServeReport r = run_serve(inject_config());
  uint64_t loss = 0;
  for (const TenantReport& t : r.tenants) {
    for (const RequestRecord& rec : t.records) loss += rec.restart_loss_cycles;
  }
  // Tenant 2 crashes mid-flight and restarts; the requests queued behind
  // the crash must absorb the downtime as restart loss.
  EXPECT_GT(loss, 0u);
}

// ---- determinism --------------------------------------------------------

TEST(ReqTraceTest, SameSeedTraceAndJournalByteIdentical) {
  for (const ServeConfig& sc : {small_config(), inject_config()}) {
    Telemetry a(full_telemetry());
    Telemetry b(full_telemetry());
    (void)run_serve(sc, &a);
    (void)run_serve(sc, &b);
    EXPECT_EQ(a.tracer()->to_chrome_json(), b.tracer()->to_chrome_json());
    EXPECT_EQ(a.journal()->to_jsonl(), b.journal()->to_jsonl());
  }
}

// ---- flow events --------------------------------------------------------

TEST(ReqTraceTest, FlowsMatched) {
  for (const ServeConfig& sc : {small_config(), inject_config()}) {
    Telemetry tel(full_telemetry());
    const ServeReport r = run_serve(sc, &tel);
    // Every request flow must have exactly one start and one terminating
    // end, and a start for every generated request.
    std::map<uint64_t, uint64_t> starts, ends;
    uint64_t start_events = 0;
    for (const telemetry::TraceLane* lane : tel.tracer()->lanes()) {
      for (const TraceEvent& e : lane->events()) {
        if (e.type == TraceEventType::kReqFlowStart) {
          ++starts[e.arg];
          ++start_events;
        }
        if (e.type == TraceEventType::kReqFlowEnd) ++ends[e.arg];
      }
    }
    EXPECT_EQ(start_events, r.generated);
    EXPECT_EQ(starts.size(), ends.size());
    for (const auto& [fid, n] : starts) {
      EXPECT_EQ(n, 1u) << "flow " << fid;
      ASSERT_EQ(ends.count(fid), 1u) << "flow " << fid << " never ends";
      EXPECT_EQ(ends.at(fid), 1u) << "flow " << fid;
    }
    const auto counts = tel.tracer()->event_counts();
    EXPECT_EQ(counts.at("req.s"), r.generated);
    EXPECT_EQ(counts.at("req.f"), r.generated);
  }
}

TEST(ReqTraceTest, FlowIdsAreUniquePerRequest) {
  EXPECT_NE(telemetry::request_flow_id(0, 0), telemetry::request_flow_id(1, 0));
  EXPECT_NE(telemetry::request_flow_id(0, 1), telemetry::request_flow_id(1, 0));
  EXPECT_EQ(telemetry::request_flow_id(2, 7), telemetry::request_flow_id(2, 7));
}

// Request span events land on the tenant's home-core lane with the flow
// id as the arg, and their per-request durations reproduce the CSV.
TEST(ReqTraceTest, SpanEventsMatchRecords) {
  Telemetry tel(full_telemetry());
  const ServeReport r = run_serve(small_config(), &tel);
  std::map<uint64_t, std::map<TraceEventType, uint64_t>> span_dur;
  for (const telemetry::TraceLane* lane : tel.tracer()->lanes()) {
    for (const TraceEvent& e : lane->events()) {
      switch (e.type) {
        case TraceEventType::kReqQueue:
        case TraceEventType::kReqRun:
        case TraceEventType::kReqRestartLoss:
        case TraceEventType::kReqCommitStall:
          span_dur[e.arg][e.type] += e.dur;
          break;
        default:
          break;
      }
    }
  }
  for (const TenantReport& t : r.tenants) {
    for (const RequestRecord& rec : t.records) {
      const uint64_t fid = telemetry::request_flow_id(t.pid, rec.id);
      const auto it = span_dur.find(fid);
      ASSERT_NE(it, span_dur.end()) << "no spans for flow " << fid;
      const auto get = [&](TraceEventType ty) {
        const auto jt = it->second.find(ty);
        return jt == it->second.end() ? 0u : jt->second;
      };
      EXPECT_EQ(get(TraceEventType::kReqQueue), rec.queue_cycles);
      EXPECT_EQ(get(TraceEventType::kReqRun), rec.run_cycles);
      EXPECT_EQ(get(TraceEventType::kReqRestartLoss),
                rec.restart_loss_cycles);
      EXPECT_EQ(get(TraceEventType::kReqCommitStall),
                rec.commit_stall_cycles);
    }
  }
}

// ---- journal ------------------------------------------------------------

TEST(ReqTraceTest, JournalRecordsLifecycle) {
  ServeConfig sc = inject_config();
  sc.restart.mode = os::RestartPolicy::Mode::kNever;
  Telemetry tel(full_telemetry());
  const ServeReport r = run_serve(sc, &tel);
  ASSERT_GT(r.tenants_down, 0u);
  uint64_t spawns = 0, faults = 0, downs = 0;
  for (const JournalEntry& e : tel.journal()->entries()) {
    if (e.kind == JournalKind::kSpawn) ++spawns;
    if (e.kind == JournalKind::kFault) {
      ++faults;
      EXPECT_EQ(e.pid, 2u);
      EXPECT_GE(e.req, 0);  // the fault hit while a request was in flight
      EXPECT_FALSE(e.detail.empty());
    }
    if (e.kind == JournalKind::kTenantDown) {
      ++downs;
      EXPECT_EQ(e.pid, 2u);
    }
  }
  EXPECT_EQ(spawns, sc.tenants);
  EXPECT_EQ(faults, 1u);
  EXPECT_EQ(downs, 1u);
  // The JSONL rendering is one object per line with the fixed key order.
  const std::string jsonl = tel.journal()->to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\": \"tenant_down\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\": \"fault\""), std::string::npos);
}

TEST(ReqTraceTest, JournalRecordsRestarts) {
  Telemetry tel(full_telemetry());
  (void)run_serve(inject_config(), &tel);
  const auto counts = tel.journal()->counts();
  EXPECT_EQ(counts.count("tenant_down"), 0u);  // recovery, not loss
  ASSERT_EQ(counts.count("restart"), 1u);
  EXPECT_GE(counts.at("restart"), 1u);
}

// ---- SLO monitor --------------------------------------------------------

TEST(ReqTraceTest, SloMonitorCountsAndGates) {
  ServeConfig sc = small_config();
  sc.slo_permille = 990;
  sc.slo_threshold = 1;  // impossible: every window breaches
  sc.slo_window = 25'000;
  const ServeReport tight = run_serve(sc);
  EXPECT_TRUE(tight.slo_enabled);
  EXPECT_EQ(tight.slo_metric, "p99");
  EXPECT_GT(tight.slo_windows, 0u);
  EXPECT_EQ(tight.slo_breaches, tight.slo_windows);
  EXPECT_DOUBLE_EQ(tight.slo_burn_rate, 1.0);
  EXPECT_TRUE(tight.slo_violated);
  EXPECT_GT(tight.slo_overall, 1u);

  sc.slo_threshold = 1'000'000'000;  // unreachable: nothing breaches
  const ServeReport loose = run_serve(sc);
  EXPECT_EQ(loose.slo_breaches, 0u);
  EXPECT_DOUBLE_EQ(loose.slo_burn_rate, 0.0);
  EXPECT_FALSE(loose.slo_violated);
  // Same runs, same windows — only the verdict moves with the threshold.
  EXPECT_EQ(loose.slo_windows, tight.slo_windows);

  // Tenant windows/breaches roll up to the fleet totals.
  uint64_t windows = 0, breaches = 0;
  for (const TenantReport& t : tight.tenants) {
    windows += t.slo_windows;
    breaches += t.slo_breaches;
  }
  EXPECT_EQ(windows, tight.slo_windows);
  EXPECT_EQ(breaches, tight.slo_breaches);
}

TEST(ReqTraceTest, SloSectionOnlyWhenEnabled) {
  const ServeReport off = run_serve(small_config());
  EXPECT_FALSE(off.slo_enabled);
  EXPECT_EQ(off.to_json().find("\"slo\""), std::string::npos);

  ServeConfig sc = small_config();
  sc.slo_permille = 500;
  sc.slo_threshold = 10'000;
  const ServeReport on = run_serve(sc);
  EXPECT_NE(on.to_json().find("\"slo\""), std::string::npos);
  EXPECT_EQ(on.slo_metric, "p50");
}

TEST(ReqTraceTest, SloMetricNames) {
  EXPECT_EQ(slo_metric_name(500), "p50");
  EXPECT_EQ(slo_metric_name(990), "p99");
  EXPECT_EQ(slo_metric_name(999), "p999");
  EXPECT_EQ(slo_metric_name(750), "p750m");
}

// ---- observer neutrality ------------------------------------------------

// Attaching the full observability stack must not change a single
// simulated cycle: the report and CSV are byte-identical with and
// without telemetry. This is what lets BENCH_serve.json stay untraced
// while BENCH_trace.json pins the traced view of the same run.
TEST(ReqTraceTest, ObserverNeutral) {
  for (const ServeConfig& sc : {small_config(), inject_config()}) {
    const ServeReport bare = run_serve(sc);
    Telemetry tel(full_telemetry());
    const ServeReport traced = run_serve(sc, &tel);
    EXPECT_EQ(bare.to_json(), traced.to_json());
    EXPECT_EQ(bare.latency_csv(), traced.latency_csv());
  }
}

// The latency CSV carries the four component columns, and they parse
// back to the record values (schema guard for trace-report).
TEST(ReqTraceTest, LatencyCsvCarriesComponents) {
  const ServeReport r = run_serve(small_config());
  const std::string csv = r.latency_csv();
  EXPECT_NE(csv.find("tenant,request,arrival,dispatch,completion,latency,"
                     "wait,queue,run,restart_loss,commit_stall,"
                     "instructions,status"),
            std::string::npos);
}

}  // namespace
}  // namespace vcfr::serve
