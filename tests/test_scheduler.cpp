// Tests for the OS/fleet runtime (src/os/): round-robin scheduling,
// context-switch flush semantics, architectural equivalence of
// time-sliced execution with isolated runs, mid-run re-randomization,
// and determinism of the multi-core fleet.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ret_bitmap.hpp"
#include "emu/emulator.hpp"
#include "os/kernel.hpp"
#include "os/scheduler.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::os {
namespace {

ProcessConfig tiny(const std::string& workload, uint64_t seed) {
  ProcessConfig pc;
  pc.workload = workload;
  pc.scale = 0;
  pc.seed = seed;
  return pc;
}

TEST(SchedulerTest, RoundRobinShardsAndRotates) {
  Scheduler sched({.slice_instructions = 100}, 2);
  EXPECT_EQ(sched.admit(0), 0u);
  EXPECT_EQ(sched.admit(1), 1u);
  EXPECT_EQ(sched.admit(2), 0u);
  EXPECT_TRUE(sched.any_runnable());

  EXPECT_EQ(sched.pick(0), 0);
  sched.requeue(0, 0);
  EXPECT_EQ(sched.pick(0), 2) << "preempted pid 0 goes behind pid 2";
  EXPECT_EQ(sched.pick(1), 1);
  EXPECT_EQ(sched.pick(1), -1) << "core 1's queue is drained";
  EXPECT_TRUE(sched.any_runnable()) << "pid 0 still queued on core 0";
  EXPECT_EQ(sched.preemptions(), 1u);
}

// (a) The DRC and return-bitmap cache flush when the address space
// changes — and survive a self-switch (same pid and epoch).
TEST(SchedulerTest, SwitchFlushesDrcAndBitmapButNotOnSelfSwitch) {
  KernelConfig kc;
  kc.cores = 1;
  kc.sched.slice_instructions = 500;
  kc.measure_isolated = false;
  kc.max_rounds = 6;  // a few interleavings, then inspect live state

  {
    Kernel kernel(kc);
    kernel.spawn(tiny("bzip2", 3));
    kernel.spawn(tiny("libquantum", 4));
    const FleetReport r = kernel.run();
    // Two processes alternating on one core: every dispatch after the
    // first is a real switch, each flushing whatever the outgoing slice
    // cached.
    EXPECT_GE(r.context_switches, 5u);
    EXPECT_GT(r.drc_entries_flushed, 0u)
        << "process A's translations must not survive into process B";
    EXPECT_EQ(r.processes[0].context_switches +
                  r.processes[1].context_switches,
              r.context_switches);
  }

  {
    // One process alone on the core: after the initial install, every
    // slice boundary is a self-switch — pid and epoch unchanged — so the
    // warm DRC must survive and no flush losses accrue.
    Kernel solo(kc);
    solo.spawn(tiny("bzip2", 3));
    const FleetReport r = solo.run();
    EXPECT_EQ(r.context_switches, 1u) << "only the initial install";
    EXPECT_EQ(r.drc_entries_flushed, 0u);
    EXPECT_EQ(r.bitmap_entries_flushed, 0u);
    EXPECT_GE(r.rounds, 2u) << "the run did span several slices";
  }
}

// (b) Time-sliced execution is architecturally invisible: outputs,
// instruction counts, final memory images, halt status all bit-match the
// same seed's isolated single-process run.
TEST(SchedulerTest, TimeSlicedResultsBitIdenticalToIsolated) {
  KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 700;  // force many interleavings
  kc.measure_isolated = false;

  Kernel kernel(kc);
  const char* mix[] = {"bzip2", "libquantum", "sjeng", "hmmer"};
  for (uint32_t i = 0; i < 4; ++i) {
    kernel.spawn(tiny(mix[i], 100 + i));
  }
  const FleetReport r = kernel.run();
  EXPECT_GT(r.context_switches, 4u);

  for (uint32_t pid = 0; pid < 4; ++pid) {
    const Process& p = kernel.process(pid);
    ASSERT_TRUE(p.finished());

    rewriter::RandomizeOptions opts;
    opts.seed = p.config().seed;
    const auto rr = rewriter::randomize(p.original(), opts);
    emu::RunLimits limits;
    limits.enforce_tags = p.config().enforce_tags;
    const emu::RunResult isolated = emu::run_image(rr.vcfr, limits);

    EXPECT_TRUE(isolated.halted);
    EXPECT_TRUE(p.emulator().halted()) << mix[pid];
    EXPECT_EQ(isolated.output, p.emulator().output()) << mix[pid];
    EXPECT_EQ(isolated.stats.instructions, p.stats().instructions)
        << mix[pid];
    EXPECT_EQ(isolated.mem_checksum, p.memory().checksum())
        << mix[pid] << ": final memory image diverged under time-slicing";
    EXPECT_EQ(isolated.final_state.regs, p.emulator().state().regs)
        << mix[pid];
  }
}

// (c) The re-randomization policy fires mid-run: epochs advance, the
// flush invalidates every cached translation, and the program still
// computes the same answer.
TEST(SchedulerTest, MidRunRerandomizationBumpsEpochAndStaysCorrect) {
  KernelConfig kc;
  kc.cores = 1;
  kc.sched.slice_instructions = 400;
  kc.measure_isolated = false;

  Kernel kernel(kc);
  ProcessConfig pc = tiny("bzip2", 11);
  pc.rerandomize.every_slices = 2;
  kernel.spawn(pc);
  const FleetReport r = kernel.run();

  const Process& p = kernel.process(0);
  ASSERT_TRUE(p.finished());
  EXPECT_TRUE(p.emulator().halted());
  ASSERT_GT(r.rerandomizations, 0u)
      << "policy every-2-slices over many slices must fire at least once "
         "(deferred: "
      << r.processes[0].rerandomizations_deferred << ")";
  EXPECT_EQ(p.epoch(), r.processes[0].rerandomizations);
  EXPECT_GT(r.drc_entries_flushed, 0u)
      << "an epoch swap kills every cached translation";

  // Same workload and seed without the policy: identical architectural
  // result — re-randomization must be semantically invisible.
  Kernel control(kc);
  control.spawn(tiny("bzip2", 11));
  control.run();
  const Process& c = control.process(0);
  EXPECT_EQ(c.emulator().output(), p.emulator().output());
  EXPECT_EQ(c.stats().instructions, p.stats().instructions);
  // Placements differ across epochs, so the translation tables must too.
  EXPECT_NE(kernel.randomization(0).placement,
            control.randomization(0).placement);
}

// The flushed return-bitmap cache refuses stale entries outright.
TEST(SchedulerTest, RetBitmapFlushDropsAllEntries) {
  cache::MemHier mem({});
  core::RetBitmapCache bitmap({}, mem);
  EXPECT_GT(bitmap.access(0x00100000, 0), 0u) << "cold miss walks memory";
  EXPECT_EQ(bitmap.access(0x00100000, 10), 0u) << "now cached";
  EXPECT_EQ(bitmap.flush(), 1u);
  EXPECT_GT(bitmap.access(0x00100000, 20), 0u) << "flush emptied the cache";
}

// Two identical multi-core fleet runs — host threads and all — must
// render byte-identical JSON reports.
TEST(SchedulerTest, FleetJsonIsDeterministicAcrossRuns) {
  auto run_once = []() {
    KernelConfig kc;
    kc.cores = 2;
    kc.sched.slice_instructions = 900;
    kc.measure_isolated = false;
    Kernel kernel(kc);
    const char* mix[] = {"libquantum", "bzip2", "hmmer"};
    for (uint32_t i = 0; i < 3; ++i) kernel.spawn(tiny(mix[i], 40 + i));
    return kernel.run().to_json();
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"context_switches\""), std::string::npos);
}

// The shared L2 sees demand traffic from every source the paper charges
// against it — including DRC table walks — and attributes reads per
// tenant.
TEST(SchedulerTest, SharedL2PressureBrokenDownBySourceAndTenant) {
  KernelConfig kc;
  kc.cores = 2;
  kc.sched.slice_instructions = 600;
  kc.measure_isolated = false;
  Kernel kernel(kc);
  kernel.spawn(tiny("bzip2", 9));
  kernel.spawn(tiny("libquantum", 10));
  const FleetReport r = kernel.run();

  EXPECT_GT(r.shared_l2.l2.accesses, 0u);
  EXPECT_GT(r.shared_l2.pressure.reads_from_drc, 0u)
      << "DRC table walks must contend on the shared L2 (SIV-B)";
  EXPECT_EQ(r.l2_reads_by_pid.size(), 2u);
  for (const auto& [pid, reads] : r.l2_reads_by_pid) {
    EXPECT_LT(pid, 2u);
    EXPECT_GT(reads, 0u);
  }
}

}  // namespace
}  // namespace vcfr::os
