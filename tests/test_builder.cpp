// Builder-API tests (the workload generators' program-construction layer).
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "rewriter/analysis.hpp"
#include "rewriter/cfg.hpp"
#include "workloads/builder.hpp"
#include "workloads/common.hpp"

namespace vcfr::workloads {
namespace {

TEST(BuilderTest, ProducesRunnableImage) {
  Builder b("unit");
  b.func("main");
  b.line("mov r1, 5");
  b.line("out r1");
  b.line("halt");
  const auto img = b.build();
  EXPECT_EQ(img.name, "unit");
  const auto r = emu::run_image(img);
  ASSERT_TRUE(r.halted) << r.error;
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 5u);
}

TEST(BuilderTest, FreshLabelsAreUnique) {
  Builder b("unit");
  const auto a = b.fresh("l");
  const auto c = b.fresh("l");
  EXPECT_NE(a, c);
  EXPECT_EQ(a.substr(0, 2), "l_");
}

TEST(BuilderTest, DataDirectivesAndSections) {
  Builder b("unit");
  b.data_section();
  b.label("buf").word(0x1234).byte(9).space(3).ptr("main");
  b.text_section();
  b.func("main");
  b.line("mov r1, @buf");
  b.line("ld r2, [r1]");
  b.line("out r2");
  b.line("halt");
  const auto img = b.build();
  EXPECT_EQ(img.read_data32(img.data_base), 0x1234u);
  EXPECT_EQ(img.relocs.size(), 1u);
  const auto r = emu::run_image(img);
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.output[0], 0x1234u);
}

TEST(BuilderTest, LcgHelperIsDeterministic) {
  auto make = [] {
    Builder b("unit");
    b.func("main");
    b.line("mov r10, 1");
    emit_lcg_step(b);
    emit_lcg_step(b);
    b.line("out r10");
    b.line("halt");
    return emu::run_image(b.build());
  };
  const auto a = make();
  const auto c = make();
  ASSERT_TRUE(a.halted);
  EXPECT_EQ(a.output, c.output);
  // Two LCG steps from seed 1 (numerical recipes constants).
  uint32_t x = 1;
  x = x * 1103515245u + 12345u;
  x = x * 1103515245u + 12345u;
  EXPECT_EQ(a.output[0], x);
}

TEST(BuilderTest, FillHelpersWriteExpectedExtents) {
  Builder b("unit");
  b.data_section();
  b.label("buf").space(64);
  b.text_section();
  b.func("main");
  b.line("mov r10, 3");
  b.line("mov r1, @buf");
  emit_fill_bytes(b, "r1", 16);
  // Checksum the 16 filled + first untouched byte.
  b.line("mov r1, @buf");
  b.line("mov r11, 0");
  b.line("mov r2, 0");
  b.label("sum");
  b.line("ldb r3, [r1]");
  b.line("add r11, r3");
  b.line("add r1, 1");
  b.line("add r2, 1");
  b.line("cmp r2, 17");
  b.line("jlt sum");
  b.line("ldb r3, [r1]");  // byte 17: never written -> 0
  b.line("out r3");
  b.line("out r11");
  b.line("halt");
  const auto r = emu::run_image(b.build());
  ASSERT_TRUE(r.halted) << r.error;
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], 0u);
  EXPECT_GT(r.output[1], 0u);
}

TEST(BuilderTest, ColdBankEmitsCallableFunctions) {
  Builder b("unit");
  b.data_section();
  emit_cold_bank_table(b, "cb", 8);
  b.text_section();
  b.func("main");
  b.line("mov r11, 0");
  b.line("mov r12, 0");
  for (int i = 0; i < 16; ++i) emit_cold_bank_call(b, "cb", 8);
  emit_epilogue(b);
  emit_cold_bank_funcs(b, "cb", 8, 12);
  const auto img = b.build();
  const auto r = emu::run_image(img);
  ASSERT_TRUE(r.halted) << r.error;
  EXPECT_FALSE(r.output.empty());

  // The bank provides Fig-9's no-ret minority: function cb_7 tail-jumps.
  const auto cfg = rewriter::build_cfg(img);
  const auto stats = rewriter::static_stats(img, cfg);
  EXPECT_GE(stats.functions_without_ret, 1u);
  EXPECT_GT(stats.functions_with_ret, stats.functions_without_ret);
}

}  // namespace
}  // namespace vcfr::workloads
