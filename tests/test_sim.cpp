// Cycle-simulator tests: functional agreement with the golden model,
// predictor behaviour, and first-order timing sanity across the three
// execution modes.
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/bpred.hpp"
#include "sim/cpu.hpp"

namespace vcfr::sim {
namespace {

using binary::Image;

CpuConfig quiet() {
  CpuConfig c;
  c.mem.dram.t_refi = 0;
  return c;
}

TEST(GshareTest, LearnsStronglyBiasedBranch) {
  Gshare g(BpredConfig{});
  for (int i = 0; i < 64; ++i) g.update(0x1000, true);
  EXPECT_TRUE(g.predict(0x1000));
  for (int i = 0; i < 64; ++i) g.update(0x1000, false);
  EXPECT_FALSE(g.predict(0x1000));
}

TEST(GshareTest, LearnsAlternatingPatternThroughHistory) {
  Gshare g(BpredConfig{});
  // Alternating taken/not-taken: with global history the pattern is
  // perfectly predictable after warmup.
  bool taken = false;
  int correct = 0;
  for (int i = 0; i < 2000; ++i) {
    taken = !taken;
    if (i > 1000 && g.predict(0x2000) == taken) ++correct;
    g.update(0x2000, taken);
  }
  EXPECT_GT(correct, 950);
}

TEST(BtbTest, StoresAddressPairs) {
  Btb btb(BpredConfig{});
  EXPECT_FALSE(btb.lookup(0x1000).has_value());
  btb.update(0x1000, {0x40000100, 0x1040});
  const auto hit = btb.lookup(0x1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rand, 0x40000100u);
  EXPECT_EQ(hit->orig, 0x1040u);
}

TEST(RasTest, LifoOrderAndOverflow) {
  BpredConfig cfg;
  cfg.ras_entries = 2;
  Ras ras(cfg);
  ras.push({1, 10});
  ras.push({2, 20});
  ras.push({3, 30});  // drops {1,10}
  EXPECT_EQ(ras.pop()->rand, 3u);
  EXPECT_EQ(ras.pop()->rand, 2u);
  EXPECT_FALSE(ras.pop().has_value());
}

// ---- whole-pipeline tests ---------------------------------------------------

constexpr const char* kLoopProgram = R"(
  .name loop
  .entry main
  .func main
  main:
    mov r1, 0
    mov r2, 0
  loop:
    add r1, 3
    add r2, 1
    cmp r2, 2000
    jlt loop
    out r1
    halt
)";

TEST(SimulatorTest, MatchesGoldenModelFunctionally) {
  const Image img = isa::assemble(kLoopProgram);
  const auto golden = emu::run_image(img);
  const auto sim = simulate(img, 1'000'000, quiet());
  EXPECT_TRUE(sim.halted);
  EXPECT_EQ(sim.error, "");
  EXPECT_EQ(sim.instructions, golden.stats.instructions);
}

TEST(SimulatorTest, TightLoopReachesNearSingleIssueIpc) {
  const Image img = isa::assemble(kLoopProgram);
  const auto sim = simulate(img, 1'000'000, quiet());
  // 4-instruction loop body, well-predicted branch, all IL1 hits:
  // IPC should approach 1.0 for a single-issue machine.
  EXPECT_GT(sim.ipc(), 0.8) << "cycles=" << sim.cycles
                            << " instrs=" << sim.instructions;
  EXPECT_LE(sim.ipc(), 1.0 + 1e-9);
  EXPECT_LT(sim.il1.misses, 10u);  // cold misses only
  EXPECT_GT(sim.bpred.cond_accuracy(), 0.99);
}

TEST(SimulatorTest, MispredictsCostCycles) {
  // Data-dependent unpredictable-ish branch (LCG parity).
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 12345
      mov r2, 0
      mov r5, 0
    loop:
      mul r1, 1103515245
      add r1, 12347
      mov r3, r1
      shr r3, 16
      and r3, 1
      cmp r3, 0
      jeq even
      add r5, 1
    even:
      add r2, 1
      cmp r2, 3000
      jlt loop
      out r5
      halt
  )");
  const auto sim = simulate(img, 1'000'000, quiet());
  EXPECT_TRUE(sim.halted);
  EXPECT_LT(sim.bpred.cond_accuracy(), 0.95);
  EXPECT_LT(sim.ipc(), 0.9);
}

TEST(SimulatorTest, DataCacheMissesSlowExecution) {
  // Stride through 1 MiB repeatedly: DL1 (32 KiB) and L2 (512 KiB) thrash.
  const Image img = isa::assemble(R"(
    .entry main
    .data 0x10000000
    buf:
      .space 1048576
    .text
    main:
      mov r4, 0
    outer:
      mov r1, @buf
      mov r2, 0
    scan:
      ld r3, [r1]
      add r1, 64
      add r2, 1
      cmp r2, 16384
      jlt scan
      add r4, 1
      cmp r4, 2
      jlt outer
      halt
  )");
  const auto sim = simulate(img, 1'000'000, quiet());
  EXPECT_TRUE(sim.halted);
  EXPECT_GT(sim.dl1.miss_rate(), 0.5);
  EXPECT_GT(sim.dram.reads, 1000u);
  EXPECT_LT(sim.ipc(), 0.5);
}

// ---- three-mode comparison (the paper's core performance claims) -----------

struct ModeResults {
  SimResult base;
  SimResult naive;
  SimResult vcfr;
};

ModeResults run_modes(const Image& img, uint32_t drc_entries = 128) {
  rewriter::RandomizeOptions opts;
  opts.seed = 7;
  const auto rr = rewriter::randomize(img, opts);
  CpuConfig cfg = quiet();
  cfg.drc.entries = drc_entries;
  return {simulate(img, 2'000'000, cfg), simulate(rr.naive, 2'000'000, cfg),
          simulate(rr.vcfr, 2'000'000, cfg)};
}

// A loop large enough (few thousand static instructions) that the
// randomized layout thrashes IL1 while the original layout fits easily.
std::string big_loop_program() {
  std::string src = ".name bigloop\n.entry main\n.func main\nmain:\n"
                    "  mov r1, 0\n  mov r2, 0\nloop:\n";
  for (int i = 0; i < 3000; ++i) src += "  add r1, " + std::to_string(i % 7 + 1) + "\n";
  src += "  add r2, 1\n  cmp r2, 40\n  jlt loop\n  out r1\n  halt\n";
  return src;
}

TEST(SimulatorModesTest, AllModesAgreeFunctionally) {
  const Image img = isa::assemble(big_loop_program());
  const auto m = run_modes(img);
  ASSERT_TRUE(m.base.halted);
  ASSERT_TRUE(m.naive.halted) << m.naive.error;
  ASSERT_TRUE(m.vcfr.halted) << m.vcfr.error;
  EXPECT_EQ(m.base.instructions, m.naive.instructions);
  EXPECT_EQ(m.base.instructions, m.vcfr.instructions);
}

TEST(SimulatorModesTest, NaiveIlrDestroysFetchLocality) {
  const Image img = isa::assemble(big_loop_program());
  const auto m = run_modes(img);
  // Figure 3's effects: IL1 miss rate explodes, prefetching becomes
  // useless, L2 sees far more reads from the instruction side.
  EXPECT_GT(m.naive.il1.miss_rate(), 10.0 * std::max(1e-6, m.base.il1.miss_rate()));
  EXPECT_GT(m.naive.il1.prefetch_useless_rate(),
            m.base.il1.prefetch_useless_rate());
  EXPECT_GT(m.naive.l2_pressure.reads_from_il1 +
                m.naive.l2_pressure.reads_from_il1_prefetch,
            2 * (m.base.l2_pressure.reads_from_il1 +
                 m.base.l2_pressure.reads_from_il1_prefetch));
  // Figure 4: IPC drops substantially.
  EXPECT_LT(m.naive.ipc(), 0.8 * m.base.ipc());
}

TEST(SimulatorModesTest, VcfrPreservesBaselinePerformance) {
  const Image img = isa::assemble(big_loop_program());
  const auto m = run_modes(img);
  // Figure 13: VCFR stays within a few percent of baseline IPC...
  EXPECT_GT(m.vcfr.ipc(), 0.93 * m.base.ipc());
  // ...and Figure 12: far faster than the naive implementation.
  EXPECT_GT(m.vcfr.ipc(), 1.2 * m.naive.ipc());
  // DRC was actually exercised.
  EXPECT_GT(m.vcfr.drc.lookups, 0u);
}

TEST(SimulatorModesTest, LargerDrcLowersMissRate) {
  // Many distinct call/branch targets to pressure a small DRC.
  std::string src = ".name drcstress\n.entry main\n.func main\nmain:\n  mov r9, 0\nouter:\n";
  for (int i = 0; i < 200; ++i) src += "  call f" + std::to_string(i) + "\n";
  src += "  add r9, 1\n  cmp r9, 30\n  jlt outer\n  halt\n";
  for (int i = 0; i < 200; ++i) {
    src += ".func f" + std::to_string(i) + "\nf" + std::to_string(i) +
           ":\n  add r1, 1\n  ret\n";
  }
  const Image img = isa::assemble(src);
  rewriter::RandomizeOptions opts;
  opts.seed = 3;
  const auto rr = rewriter::randomize(img, opts);

  CpuConfig small = quiet();
  small.drc.entries = 64;
  CpuConfig large = quiet();
  large.drc.entries = 512;
  const auto rs = simulate(rr.vcfr, 2'000'000, small);
  const auto rl = simulate(rr.vcfr, 2'000'000, large);
  ASSERT_TRUE(rs.halted);
  EXPECT_GT(rs.drc.miss_rate(), rl.drc.miss_rate());
}

TEST(SimulatorModesTest, PowerAccountingIsPopulated) {
  const Image img = isa::assemble(kLoopProgram);
  rewriter::RandomizeOptions opts;
  const auto rr = rewriter::randomize(img, opts);
  const auto r = simulate(rr.vcfr, 1'000'000, quiet());
  EXPECT_GT(r.power.core, 0.0);
  EXPECT_GT(r.power.il1, 0.0);
  EXPECT_GT(r.power.drc, 0.0);
  // Figure 15's headline: DRC dynamic power is a tiny fraction of the CPU.
  EXPECT_LT(r.power.drc_overhead_percent(), 2.0);
  EXPECT_FALSE(r.power.report().empty());
}

}  // namespace
}  // namespace vcfr::sim
