// Functional tests for the golden-model emulator on original-layout images.
#include <gtest/gtest.h>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "isa/assembler.hpp"

namespace vcfr::emu {
namespace {

RunResult run_src(const std::string& src, const RunLimits& limits = {}) {
  return run_image(isa::assemble(src), limits);
}

TEST(EmulatorTest, ArithmeticAndOutput) {
  const auto r = run_src(R"(
    mov r1, 6
    mov r2, 7
    mul r1, r2
    out r1
    sub r1, 2
    out r1
    halt
  )");
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.error, "");
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], 42u);
  EXPECT_EQ(r.output[1], 40u);
}

TEST(EmulatorTest, LoopWithConditionals) {
  // Sum 1..10.
  const auto r = run_src(R"(
    .entry main
    main:
      mov r1, 0
      mov r2, 1
    loop:
      add r1, r2
      add r2, 1
      cmp r2, 10
      jle loop
      out r1
      halt
  )");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 55u);
}

TEST(EmulatorTest, SignedAndUnsignedConditions) {
  const auto r = run_src(R"(
    mov r1, 0
    sub r1, 1        ; r1 = 0xffffffff (-1)
    cmp r1, 1
    jlt signed_less  ; -1 < 1 signed
    out r0
    halt
  signed_less:
    mov r2, 1
    out r2
    cmp r1, 1
    jb unsigned_less  ; 0xffffffff > 1 unsigned: not taken
    mov r3, 2
    out r3
    halt
  unsigned_less:
    out r0
    halt
  )");
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], 1u);
  EXPECT_EQ(r.output[1], 2u);
}

TEST(EmulatorTest, MemoryLoadsAndStores) {
  const auto r = run_src(R"(
    .data 0x10000000
    arr:
      .word 10
      .word 20
      .word 30
    .text
    mov r1, @arr
    ld r2, [r1]
    ld r3, [r1+4]
    add r2, r3
    st r2, [r1+8]
    ld r4, [r1+8]
    out r4
    stb r4, [r1]      ; write low byte (30)
    ldb r5, [r1]
    out r5
    halt
  )");
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], 30u);
  EXPECT_EQ(r.output[1], 30u);
}

TEST(EmulatorTest, CallsAndReturns) {
  const auto r = run_src(R"(
    .entry main
    .func main
    main:
      mov r1, 5
      call square
      out r1
      halt
    .func square
    square:
      mul r1, r1
      ret
  )");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 25u);
  EXPECT_EQ(r.stats.calls, 1u);
  EXPECT_EQ(r.stats.returns, 1u);
}

TEST(EmulatorTest, RecursiveCalls) {
  // factorial(6) via recursion with stack discipline.
  const auto r = run_src(R"(
    .entry main
    .func main
    main:
      mov r1, 6
      call fact
      out r2
      halt
    .func fact
    fact:
      cmp r1, 1
      jgt recurse
      mov r2, 1
      ret
    recurse:
      push r1
      sub r1, 1
      call fact
      pop r1
      mul r2, r1
      ret
  )");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 720u);
}

TEST(EmulatorTest, IndirectCallThroughTable) {
  const auto r = run_src(R"(
    .entry main
    .data 0x10000000
    table:
      .ptr add_one
      .ptr add_two
    .text
    .func main
    main:
      mov r1, 100
      mov r5, @table
      ld r6, [r5+4]    ; add_two
      callr r6
      out r1
      halt
    .func add_one
    add_one:
      add r1, 1
      ret
    .func add_two
    add_two:
      add r1, 2
      ret
  )");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 102u);
  EXPECT_EQ(r.stats.indirect_transfers, 1u);
}

TEST(EmulatorTest, SysExitAndSysOut) {
  const auto r = run_src(R"(
    mov r0, 9
    sys 1
    sys 0
    out r0   ; unreachable
  )");
  EXPECT_TRUE(r.halted);
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], 9u);
}

TEST(EmulatorTest, FaultsOnInvalidOpcode) {
  const auto r = run_src("jmp 0x9000\n");  // lands in unmapped memory
  EXPECT_FALSE(r.halted);
  EXPECT_NE(r.error.find("invalid opcode"), std::string::npos);
}

TEST(EmulatorTest, FaultsOnDivisionByZero) {
  const auto r = run_src(R"(
    mov r1, 10
    mov r2, 0
    div r1, r2
    halt
  )");
  EXPECT_FALSE(r.halted);
  EXPECT_NE(r.error.find("division by zero"), std::string::npos);
}

TEST(EmulatorTest, InstructionLimitStopsRun) {
  RunLimits limits;
  limits.max_instructions = 100;
  const auto r = run_src("spin:\n jmp spin\n", limits);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.stats.instructions, 100u);
}

TEST(EmulatorTest, StepTraceRecordsTransfersAndMemory) {
  binary::Memory mem;
  const auto img = isa::assemble(R"(
    mov r1, 1
    push r1
    pop r2
    jmp done
    nop
    done:
    halt
  )");
  binary::load(img, mem);
  Emulator e(img, mem);
  StepInfo si;
  ASSERT_TRUE(e.step(&si));  // mov
  EXPECT_FALSE(si.has_mem);
  EXPECT_FALSE(si.is_taken_transfer);
  ASSERT_TRUE(e.step(&si));  // push
  EXPECT_TRUE(si.has_mem);
  EXPECT_TRUE(si.mem_is_store);
  ASSERT_TRUE(e.step(&si));  // pop
  EXPECT_TRUE(si.has_mem);
  EXPECT_FALSE(si.mem_is_store);
  ASSERT_TRUE(e.step(&si));  // jmp
  EXPECT_TRUE(si.is_taken_transfer);
  EXPECT_EQ(si.next_rpc, si.instr.imm);
  ASSERT_TRUE(e.step(&si));  // halt
  EXPECT_FALSE(e.step(&si));
}

TEST(EmulatorTest, PushPopPreserveSp) {
  const auto r = run_src(R"(
    mov r1, 0xabcd
    push r1
    push r1
    pop r2
    pop r3
    mov r4, sp
    out r4
    halt
  )");
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0], binary::kDefaultStackTop);
}

}  // namespace
}  // namespace vcfr::emu
