// Tests for the Figure-2 software-emulator cost model.
#include <gtest/gtest.h>

#include "emu/ilr_emulator.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr::emu {
namespace {

binary::Image loop_program(int body_adds) {
  std::string src = ".entry main\nmain:\n  mov r1, 0\n  mov r2, 0\nloop:\n";
  for (int i = 0; i < body_adds; ++i) src += "  add r1, 1\n";
  src += "  add r2, 1\n  cmp r2, 500\n  jlt loop\n  halt\n";
  return isa::assemble(src);
}

TEST(IlrEmulatorTest, SlowdownIsHundredsOfTimes) {
  const auto rr = rewriter::randomize(loop_program(8), {});
  const auto r = emulate_ilr(rr.naive, /*native_cpi=*/1.0);
  EXPECT_GT(r.guest_instructions, 1000u);
  EXPECT_GT(r.slowdown_vs_native, 50.0);
  EXPECT_LT(r.slowdown_vs_native, 2000.0);
}

TEST(IlrEmulatorTest, CostScalesWithGuestInstructionCount) {
  const auto rr = rewriter::randomize(loop_program(8), {});
  RunLimits half;
  half.max_instructions = 2000;
  RunLimits full;
  full.max_instructions = 4000;
  const auto a = emulate_ilr(rr.naive, 1.0, half);
  const auto b = emulate_ilr(rr.naive, 1.0, full);
  EXPECT_EQ(a.guest_instructions, 2000u);
  EXPECT_EQ(b.guest_instructions, 4000u);
  EXPECT_NEAR(b.host_cycles / a.host_cycles, 2.0, 0.1);
}

TEST(IlrEmulatorTest, ControlHeavyGuestCostsMorePerInstruction) {
  // A guest that is almost all taken transfers pays the target-mapping
  // cost on nearly every instruction.
  const auto straight = rewriter::randomize(loop_program(64), {});
  const binary::Image ping = isa::assemble(R"(
    .entry main
    main:
      mov r2, 0
    a:
      add r2, 1
      cmp r2, 2000
      jge end
      jmp b
    b:
      jmp a
    end:
      halt
  )");
  const auto branchy = rewriter::randomize(ping, {});
  RunLimits limits;
  limits.max_instructions = 5000;
  const auto r_straight = emulate_ilr(straight.naive, 1.0, limits);
  const auto r_branchy = emulate_ilr(branchy.naive, 1.0, limits);
  EXPECT_GT(r_branchy.host_cycles_per_instr,
            1.2 * r_straight.host_cycles_per_instr);
}

TEST(IlrEmulatorTest, PredictableOpcodeStreamMispredictsLess) {
  // A long run of identical opcodes trains the dispatch predictor; the
  // random LCG-driven workloads do not.
  const auto uniform = rewriter::randomize(loop_program(200), {});
  const auto python = rewriter::randomize(workloads::make_python(0), {});
  RunLimits limits;
  limits.max_instructions = 20000;
  const auto r_uniform = emulate_ilr(uniform.naive, 1.0, limits);
  const auto r_python = emulate_ilr(python.naive, 1.0, limits);
  EXPECT_LT(r_uniform.dispatch_mispredict_rate,
            r_python.dispatch_mispredict_rate);
}

TEST(IlrEmulatorTest, HigherNativeCpiLowersTheRatio) {
  const auto rr = rewriter::randomize(loop_program(8), {});
  const auto fast_native = emulate_ilr(rr.naive, 1.0);
  const auto slow_native = emulate_ilr(rr.naive, 2.0);
  EXPECT_NEAR(fast_native.slowdown_vs_native,
              2.0 * slow_native.slowdown_vs_native, 1.0);
}

TEST(IlrEmulatorTest, CustomCostsAreHonored) {
  const auto rr = rewriter::randomize(loop_program(8), {});
  IlrEmulatorCosts cheap;
  cheap.dispatch = 1;
  cheap.dispatch_mispredict = 0;
  cheap.pc_mapping = 1;
  cheap.per_encoded_byte = 0;
  cheap.alu = 0;
  cheap.memory = 0;
  cheap.control = 0;
  cheap.target_mapping = 0;
  cheap.target_change = 0;
  cheap.host_cpi = 1.0;
  const auto r = emulate_ilr(rr.naive, 1.0, {}, cheap);
  EXPECT_NEAR(r.host_cycles_per_instr, 2.0, 1e-9);
}

}  // namespace
}  // namespace vcfr::emu
