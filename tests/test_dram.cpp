// DRAM timing-model tests: row-buffer policy, bank conflicts, refresh.
#include <gtest/gtest.h>

#include "dram/dram.hpp"

namespace vcfr::dram {
namespace {

DramConfig no_refresh() {
  DramConfig c;
  c.t_refi = 0;  // disable refresh for deterministic latency checks
  return c;
}

TEST(DramTest, RowHitIsCheaperThanRowMiss) {
  Dram d(no_refresh());
  const uint32_t first = d.read(0x0, 1000);
  const uint32_t hit = d.read(0x40, 2000);  // same row, bank idle again
  EXPECT_LT(hit, first);
  EXPECT_EQ(d.stats().row_hits, 1u);
  EXPECT_EQ(d.stats().row_misses, 1u);
}

TEST(DramTest, RowMissAfterConflictPaysPrecharge) {
  DramConfig c = no_refresh();
  Dram d(c);
  (void)d.read(0x0, 0);  // opens row 0 in bank 0
  // Same bank, different row: banks stride by row_bytes, so bank 0 rows are
  // at multiples of row_bytes * banks.
  const uint32_t conflict_addr = c.row_bytes * c.banks;
  const uint32_t lat = d.read(conflict_addr, 10000);
  const uint32_t expected =
      (c.t_rp + c.t_rcd + c.t_cl + c.t_burst) * c.cpu_per_mem_cycle;
  EXPECT_EQ(lat, expected);
}

TEST(DramTest, BankBusyDelaysBackToBackAccesses) {
  Dram d(no_refresh());
  const uint32_t l1 = d.read(0x0, 0);
  // Immediately hit the same bank: waits for the first access to finish.
  const uint32_t l2 = d.read(0x40, 0);
  EXPECT_GT(l2, l1) << "second access should queue behind the first";
}

TEST(DramTest, DistinctBanksProceedInParallel) {
  DramConfig c = no_refresh();
  Dram d(c);
  const uint32_t l1 = d.read(0, 0);
  const uint32_t l2 = d.read(c.row_bytes, 0);  // next bank
  EXPECT_EQ(l1, l2) << "no bank conflict between different banks";
}

TEST(DramTest, RefreshWindowStallsAccesses) {
  DramConfig c;  // refresh enabled
  Dram d(c);
  // An access issued right at the start of a refresh interval waits for
  // the refresh to complete.
  const uint32_t lat = d.read(0x0, 0);
  const uint32_t service =
      (c.t_rcd + c.t_cl + c.t_burst) * c.cpu_per_mem_cycle;
  EXPECT_GE(lat, service + 1);
  EXPECT_GE(d.stats().refresh_stalls, 1u);
}

TEST(DramTest, WritesTrackRowBufferState) {
  Dram d(no_refresh());
  d.write(0x0, 0);
  EXPECT_EQ(d.stats().writes, 1u);
  // Subsequent read to same row at a later time is a row hit.
  const uint32_t lat = d.read(0x80, 100000);
  const DramConfig c = no_refresh();
  EXPECT_EQ(lat, (c.t_cl + c.t_burst) * c.cpu_per_mem_cycle);
}

}  // namespace
}  // namespace vcfr::dram
