// CFG, analysis, and randomizer tests, including the central property:
// ILR/VCFR randomization preserves program semantics for arbitrary seeds.
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::rewriter {
namespace {

using binary::Image;
using binary::Layout;
using emu::run_image;

// A program exercising every control-flow feature the rewriter handles:
// loops, direct/indirect calls, a jump table, recursion, and a PIC-style
// function that reads its own return address.
constexpr const char* kRichProgram = R"(
  .name rich
  .entry main
  .data 0x10000000
  jt:
    .ptr op_add
    .ptr op_sub
    .ptr op_mul
  vals:
    .word 17
    .word 5
  .text
  .func main
  main:
    mov r10, @vals
    ld r1, [r10]
    ld r2, [r10+4]
    mov r3, 0          ; selector
  dispatch_loop:
    mov r4, @jt
    mov r5, r3
    mul r5, 4
    add r4, r5
    ld r6, [r4]
    callr r6           ; indirect call through the jump table
    out r1
    add r3, 1
    cmp r3, 3
    jlt dispatch_loop
    call fact_entry
    out r7
    call pic_reader
    out r9
    halt
  .func op_add
  op_add:
    add r1, r2
    ret
  .func op_sub
  op_sub:
    sub r1, r2
    ret
  .func op_mul
  op_mul:
    mul r1, r2
    ret
  .func fact_entry
  fact_entry:
    mov r7, 1
    mov r8, 5
  fact_loop:
    mul r7, r8
    sub r8, 1
    cmp r8, 0
    jgt fact_loop
    ret
  .func pic_reader
  pic_reader:
    ld r9, [sp]       ; read own return address (PIC idiom)
    and r9, 0         ; use it only for computation, then discard
    add r9, 123
    ret
)";

std::vector<uint32_t> expected_rich_output() {
  // r1=17,r2=5: add->22, sub->17, mul->85; fact 5!=120; pic yields 123.
  return {22u, 17u, 85u, 120u, 123u};
}

TEST(CfgTest, BlocksAndLeaders) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 0
    loop:
      add r1, 1
      cmp r1, 3
      jlt loop
      halt
  )");
  const Cfg cfg = build_cfg(img);
  ASSERT_EQ(cfg.instrs.size(), 5u);
  // Blocks: [mov], [add,cmp,jlt], [halt].
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].num_instrs, 1u);
  EXPECT_EQ(cfg.blocks[1].num_instrs, 3u);
  EXPECT_EQ(cfg.blocks[2].num_instrs, 1u);
  // Loop block has two successors: taken target + fall-through.
  EXPECT_EQ(cfg.blocks[1].successors.size(), 2u);
}

TEST(CfgTest, FunctionExtentsAndRetDetection) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      call f
      halt
    .func f
    f:
      ret
    .func noret
    noret:
      jmp main
  )");
  const Cfg cfg = build_cfg(img);
  ASSERT_EQ(cfg.functions.size(), 3u);
  EXPECT_FALSE(cfg.functions[0].has_ret);
  EXPECT_TRUE(cfg.functions[1].has_ret);
  EXPECT_FALSE(cfg.functions[2].has_ret);
  EXPECT_EQ(cfg.function_of(img.entry), &cfg.functions[0]);
  EXPECT_EQ(cfg.function_of(0x0), nullptr);
}

TEST(AnalysisTest, StaticStatsCountTransferKinds) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      call f
      callr r1
      jmp x
    x:
      jne x
      jmpr r2
    .func f
    f:
      ret
  )");
  const Cfg cfg = build_cfg(img);
  const StaticStats s = static_stats(img, cfg);
  EXPECT_EQ(s.direct_transfers, 3u);   // call f, jmp, jne
  EXPECT_EQ(s.indirect_transfers, 2u); // callr, jmpr
  EXPECT_EQ(s.function_calls, 2u);
  EXPECT_EQ(s.indirect_calls, 1u);
  EXPECT_EQ(s.returns, 1u);
  EXPECT_EQ(s.functions_with_ret, 1u);
  EXPECT_EQ(s.functions_without_ret, 1u);
}

TEST(AnalysisTest, UnprovenDataPointerKeepsTargetUnrandomized) {
  // A raw .word holding a code address (no .ptr relocation) models
  // incomplete relocation info: its target must stay at its original
  // address (the paper's failover, §IV-A).
  const Image img = isa::assemble(R"(
    .entry main
    .data 0x10000000
    raw:
      .word 0x1000     ; address of main, but not relocation-covered
    .text
    main:
      halt
  )");
  const Cfg cfg = build_cfg(img);
  const AnalysisResult ar = analyze(img, cfg, ReturnPolicy::kArchitectural);
  EXPECT_TRUE(ar.unproven_data_slots.contains(0x10000000u));
  EXPECT_TRUE(ar.unrandomized.contains(0x1000u));
}

TEST(AnalysisTest, RelocCoveredPointerIsPatched) {
  const Image img = isa::assemble(R"(
    .entry main
    .data 0x10000000
    jt:
      .ptr main
    .text
    main:
      halt
  )");
  const Cfg cfg = build_cfg(img);
  const AnalysisResult ar = analyze(img, cfg, ReturnPolicy::kArchitectural);
  EXPECT_TRUE(ar.patched_data_slots.contains(0x10000000u));
  EXPECT_FALSE(ar.unrandomized.contains(img.entry));
}

TEST(AnalysisTest, IndirectCallReturnSitesAreUnsafe) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      callr r1
      halt
  )");
  const Cfg cfg = build_cfg(img);
  const AnalysisResult ar = analyze(img, cfg, ReturnPolicy::kArchitectural);
  ASSERT_EQ(ar.unsafe_return_sites.size(), 1u);
  // The return site is the halt after the 2-byte callr.
  EXPECT_TRUE(ar.unsafe_return_sites.contains(img.entry + 2));
}

TEST(AnalysisTest, PicReaderUnsafeOnlyUnderConservativePolicy) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      call pic
      halt
    .func pic
    pic:
      ld r1, [sp]
      ret
  )");
  const Cfg cfg = build_cfg(img);
  const auto cons = analyze(img, cfg, ReturnPolicy::kConservative);
  const auto arch = analyze(img, cfg, ReturnPolicy::kArchitectural);
  EXPECT_EQ(cons.unsafe_return_sites.size(), 1u);
  EXPECT_TRUE(arch.unsafe_return_sites.empty())
      << "the §IV-C bitmap makes PIC reads safe to randomize";
}

TEST(AnalysisTest, ComputedDispatchWindowIsUnrandomized) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, @handlers
      mov r2, 3
      mul r2, 8
      add r1, r2
      jmpr r1
    .func handlers
    handlers:
      nop
      ret
  )");
  const Cfg cfg = build_cfg(img);
  const AnalysisResult ar = analyze(img, cfg, ReturnPolicy::kArchitectural);
  // Every instruction of the handlers function stays at its original
  // address, and the base mov is not patched.
  const auto* f = cfg.function_of(img.functions[1].addr);
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(ar.unrandomized.contains(f->start));
  EXPECT_FALSE(ar.code_imm_sites.contains(img.entry));
}

// --- the central equivalence property -------------------------------------

class RandomizeEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizeEquivalence, RichProgramAllLayoutsAgree) {
  const Image original = isa::assemble(kRichProgram);
  const auto expected = expected_rich_output();

  const auto base = run_image(original);
  ASSERT_TRUE(base.halted) << base.error;
  ASSERT_EQ(base.output, expected);

  RandomizeOptions opts;
  opts.seed = GetParam();
  const RandomizeResult rr = randomize(original, opts);

  const auto naive = run_image(rr.naive);
  EXPECT_TRUE(naive.halted) << naive.error;
  EXPECT_EQ(naive.output, expected);

  const auto vcfr = run_image(rr.vcfr);
  EXPECT_TRUE(vcfr.halted) << vcfr.error;
  EXPECT_EQ(vcfr.output, expected);
  EXPECT_EQ(vcfr.stats.tag_violations, 0u);

  // Same dynamic instruction counts: randomization must not add or drop
  // architecturally executed instructions.
  EXPECT_EQ(naive.stats.instructions, base.stats.instructions);
  EXPECT_EQ(vcfr.stats.instructions, base.stats.instructions);
}

TEST_P(RandomizeEquivalence, ConservativePolicyAlsoAgrees) {
  const Image original = isa::assemble(kRichProgram);
  RandomizeOptions opts;
  opts.seed = GetParam();
  opts.return_policy = ReturnPolicy::kConservative;
  const RandomizeResult rr = randomize(original, opts);

  const auto vcfr = run_image(rr.vcfr);
  EXPECT_TRUE(vcfr.halted) << vcfr.error;
  EXPECT_EQ(vcfr.output, expected_rich_output());
  EXPECT_EQ(vcfr.stats.tag_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizeEquivalence,
                         ::testing::Values(1u, 2u, 7u, 42u, 1234u, 99999u,
                                           0xdeadbeefu));

TEST(RandomizerTest, PlacementIsDisjointAndInRegion) {
  const Image original = isa::assemble(kRichProgram);
  RandomizeOptions opts;
  opts.seed = 5;
  const RandomizeResult rr = randomize(original, opts);
  std::unordered_set<uint32_t> seen;
  for (const auto& [orig, rand_addr] : rr.placement) {
    EXPECT_GE(rand_addr, opts.rand_base);
    EXPECT_LT(rand_addr, opts.rand_base + rr.naive.rand_size);
    // One instruction per slot: distinct slot indices.
    EXPECT_TRUE(seen.insert((rand_addr - opts.rand_base) / opts.slot_bytes)
                    .second)
        << "two instructions share a slot";
    (void)orig;
  }
}

TEST(RandomizerTest, DifferentSeedsGiveDifferentPlacements) {
  const Image original = isa::assemble(kRichProgram);
  RandomizeOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ra = randomize(original, a);
  const auto rb = randomize(original, b);
  size_t same = 0;
  for (const auto& [orig, rand_addr] : ra.placement) {
    auto it = rb.placement.find(orig);
    if (it != rb.placement.end() && it->second == rand_addr) ++same;
  }
  EXPECT_LT(same, ra.placement.size() / 4)
      << "re-randomization should relocate almost everything";
}

TEST(RandomizerTest, VcfrKeepsOriginalLayout) {
  const Image original = isa::assemble(kRichProgram);
  const RandomizeResult rr = randomize(original, {});
  ASSERT_EQ(rr.vcfr.code.size(), original.code.size());
  // Instruction boundaries and opcodes are unchanged; only transfer
  // targets / patched immediates may differ.
  const auto before = isa::disassemble(original);
  const auto after = isa::disassemble(rr.vcfr);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].addr, after[i].addr);
    EXPECT_EQ(before[i].instr.op, after[i].instr.op);
  }
}

TEST(RandomizerTest, TranslationTablesAreConsistent) {
  const Image original = isa::assemble(kRichProgram);
  const RandomizeResult rr = randomize(original, {});
  const auto& t = rr.vcfr.tables;
  EXPECT_EQ(t.derand.size(), t.rand.size());
  for (const auto& [rand_addr, orig] : t.derand) {
    auto it = t.rand.find(orig);
    ASSERT_NE(it, t.rand.end());
    EXPECT_EQ(it->second, rand_addr);
  }
  EXPECT_GT(t.table_bytes, 0u);
  EXPECT_EQ(t.table_bytes & (t.table_bytes - 1), 0u) << "power-of-two size";
}

TEST(RandomizerTest, PageConfinedPlacementStaysInPage) {
  const Image original = isa::assemble(kRichProgram);
  RandomizeOptions opts;
  opts.seed = 9;
  opts.placement = PlacementPolicy::kPageConfined;
  const RandomizeResult rr = randomize(original, opts);
  // One randomized region (page + a line of straddle slop) per original
  // page.
  constexpr uint32_t kStride = 4096 + 64;
  for (const auto& [orig, rand_addr] : rr.placement) {
    const uint32_t orig_page = (orig - original.code_base) / 4096;
    const uint32_t rand_region = (rand_addr - opts.rand_base) / kStride;
    EXPECT_EQ(orig_page, rand_region)
        << "instruction left its region: " << orig << " -> " << rand_addr;
  }
  // Instructions still get shuffled within the page.
  size_t moved_order = 0;
  for (const auto& [orig, rand_addr] : rr.placement) {
    if ((rand_addr - opts.rand_base) != (orig - original.code_base)) {
      ++moved_order;
    }
  }
  EXPECT_GT(moved_order, rr.placement.size() / 2);
}

TEST(RandomizerTest, PageConfinedPreservesSemantics) {
  const Image original = isa::assemble(kRichProgram);
  for (uint64_t seed : {1ull, 55ull}) {
    RandomizeOptions opts;
    opts.seed = seed;
    opts.placement = PlacementPolicy::kPageConfined;
    const RandomizeResult rr = randomize(original, opts);
    const auto naive = run_image(rr.naive);
    EXPECT_TRUE(naive.halted) << naive.error;
    EXPECT_EQ(naive.output, expected_rich_output());
    const auto vcfr = run_image(rr.vcfr);
    EXPECT_TRUE(vcfr.halted) << vcfr.error;
    EXPECT_EQ(vcfr.output, expected_rich_output());
  }
}

TEST(RandomizerTest, RejectsAlreadyRandomizedImages) {
  const Image original = isa::assemble(kRichProgram);
  const RandomizeResult rr = randomize(original, {});
  EXPECT_THROW((void)randomize(rr.vcfr, {}), std::invalid_argument);
  RandomizeOptions bad;
  bad.slot_bytes = 4;
  EXPECT_THROW((void)randomize(original, bad), std::invalid_argument);
  bad = {};
  bad.spread = 0.5;
  EXPECT_THROW((void)randomize(original, bad), std::invalid_argument);
}

}  // namespace
}  // namespace vcfr::rewriter
