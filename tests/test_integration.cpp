// Integration tests: each synthetic workload must exhibit the
// micro-architectural character of the SPEC application it substitutes
// (DESIGN.md §2's substitution argument, checked end-to-end through the
// cycle simulator).
#include <gtest/gtest.h>

#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "workloads/suite.hpp"

namespace vcfr {
namespace {

sim::SimResult run_base(const char* name) {
  return sim::simulate(workloads::make(name, 1), 3'000'000);
}

TEST(WorkloadCharacterTest, McfIsDataCacheBound) {
  const auto r = run_base("mcf");
  EXPECT_GT(r.dl1.miss_rate(), 0.05) << "pointer chasing must thrash DL1";
  EXPECT_GT(r.dram.reads, 1000u) << "the node heap exceeds the L2";
}

TEST(WorkloadCharacterTest, HmmerIsHighIpcRegular) {
  const auto r = run_base("hmmer");
  EXPECT_GT(r.ipc(), 0.9);
  EXPECT_GT(r.bpred.cond_accuracy(), 0.97);
}

TEST(WorkloadCharacterTest, SjengExercisesDeepCallReturn) {
  const auto r = run_base("sjeng");
  EXPECT_GT(r.bpred.ras_pops, 1000u);
  // Well-nested recursion: the 16-deep RAS almost never mispredicts.
  EXPECT_LT(static_cast<double>(r.bpred.ras_mispredicts) /
                static_cast<double>(r.bpred.ras_pops),
            0.02);
}

TEST(WorkloadCharacterTest, LibquantumHasTinyHotLoop) {
  const auto r = run_base("libquantum");
  EXPECT_LT(r.il1.miss_rate(), 0.001);
  EXPECT_GT(r.dl1.accesses, 10000u) << "streams the state vector";
}

TEST(WorkloadCharacterTest, XalanIsIndirectCallHeavy) {
  const auto r = run_base("xalan");
  EXPECT_GT(r.bpred.btb_lookups, 10000u);
  // Polymorphic dispatch: a visible fraction of taken transfers mispredict.
  const auto rr = rewriter::randomize(workloads::make("xalan", 1), {});
  const auto v = sim::simulate(rr.vcfr, 3'000'000);
  EXPECT_GT(v.drc.lookups * 1000 / v.instructions, 100u)
      << "xalan is the suite's heaviest DRC client";
}

TEST(WorkloadCharacterTest, NamdIsDivideHeavy) {
  const auto base = run_base("namd");
  // The force kernel's divide keeps IPC below the regular kernels'.
  EXPECT_LT(base.ipc(), 0.95);
  EXPECT_GT(base.ipc(), 0.6);
}

TEST(WorkloadCharacterTest, Fig2AppsCompleteUnderCap) {
  for (const auto& name : workloads::fig2_names()) {
    const auto r = sim::simulate(workloads::make(name, 0), 20'000'000);
    EXPECT_TRUE(r.halted) << name << ": " << r.error;
  }
}

TEST(WorkloadCharacterTest, PythonComputedDispatchIsFailover) {
  const auto rr = rewriter::randomize(workloads::make("python", 0), {});
  // The interpreter's handler cluster cannot be randomized (computed
  // goto), so python carries a sizeable failover set.
  EXPECT_GT(rr.analysis.unrandomized.size(), 30u);
}

TEST(EndToEndTest, FullPipelineOnEverySpecAppAtScale0) {
  // assemble-from-generator -> randomize -> simulate VCFR to completion,
  // agreeing with the baseline's retired-instruction count.
  for (const auto& name : workloads::spec_names()) {
    const auto img = workloads::make(name, 0);
    const auto base = sim::simulate(img, 30'000'000);
    ASSERT_TRUE(base.halted) << name;
    rewriter::RandomizeOptions opts;
    opts.seed = 99;
    const auto rr = rewriter::randomize(img, opts);
    const auto v = sim::simulate(rr.vcfr, 30'000'000);
    ASSERT_TRUE(v.halted) << name << ": " << v.error;
    EXPECT_EQ(v.instructions, base.instructions) << name;
    EXPECT_GT(v.ipc(), 0.5 * base.ipc()) << name;
  }
}

}  // namespace
}  // namespace vcfr
