// Focused timing tests for the VCFR-specific pipeline paths: which events
// consult the DRC, which DRC misses stall, bitmap costs, and the fetch
// model's corner cases.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"

namespace vcfr::sim {
namespace {

using binary::Image;

CpuConfig quiet() {
  CpuConfig c;
  c.mem.dram.t_refi = 0;
  return c;
}

rewriter::RandomizeResult rand7(const Image& img,
                                rewriter::ReturnPolicy policy =
                                    rewriter::ReturnPolicy::kArchitectural) {
  rewriter::RandomizeOptions opts;
  opts.seed = 7;
  opts.return_policy = policy;
  return rewriter::randomize(img, opts);
}

TEST(VcfrTimingTest, BaselineRunsHaveNoDrcActivity) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 0
    l:
      add r1, 1
      cmp r1, 100
      jlt l
      halt
  )");
  const auto r = simulate(img, 100000, quiet());
  EXPECT_EQ(r.drc.lookups, 0u);
  EXPECT_EQ(r.drc_table_walks, 0u);
  EXPECT_EQ(r.ret_bitmap.accesses, 0u);
}

TEST(VcfrTimingTest, TakenTransfersProduceDrcLookups) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 0
    l:
      add r1, 1
      cmp r1, 500
      jlt l
      halt
  )");
  const auto rr = rand7(img);
  const auto r = simulate(rr.vcfr, 100000, quiet());
  ASSERT_TRUE(r.halted);
  // Every executed taken branch consults the DRC (Fig 14's lookup stream):
  // the loop takes its back-edge 499 times.
  EXPECT_GE(r.drc.lookups, 499u);
  // Warm loop: the single hot entry stays resident, so misses are cold-only.
  EXPECT_LT(r.drc.misses, 20u);
}

TEST(VcfrTimingTest, CallsLookUpRandEntriesOffTheCriticalPath) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, 0
    l:
      call leaf
      add r1, 1
      cmp r1, 300
      jlt l
      halt
    .func leaf
    leaf:
      ret
  )");
  const auto rr = rand7(img);
  const auto r = simulate(rr.vcfr, 100000, quiet());
  ASSERT_TRUE(r.halted);
  EXPECT_GE(r.drc.rand_lookups, 300u) << "one rand entry per executed call";
  EXPECT_GE(r.ret_bitmap.accesses, 300u) << "bitmap bit set per call";
  // The same program with conservative (no randomized returns for safe
  // sites? safe here) — compare against the *no-randomization* policy via
  // cycles: rand lookups must not meaningfully slow the warm loop.
  const auto base = simulate(img, 100000, quiet());
  EXPECT_LT(static_cast<double>(r.cycles),
            1.10 * static_cast<double>(base.cycles))
      << "rand-entry lookups and bitmap updates must stay off the critical "
         "path";
}

TEST(VcfrTimingTest, RotatingIndirectTargetsPayDrcWalks) {
  // An indirect jump that rotates over 40 targets defeats the BTB, so the
  // redirect needs the DRC; with a tiny DRC those lookups also miss, and
  // the walk latency shows up in cycles.
  std::string src = ".entry main\n.data\njt:\n";
  for (int i = 0; i < 40; ++i) src += ".ptr t" + std::to_string(i) + "\n";
  src += ".text\nmain:\n  mov r1, 0\nloop:\n"
         "  mov r2, r1\n  and r2, 39\n  mul r2, 4\n  add r2, @jt\n"
         "  ld r3, [r2]\n  jmpr r3\n";
  for (int i = 0; i < 40; ++i) {
    src += "t" + std::to_string(i) + ":\n  add r1, 1\n  cmp r1, 2000\n"
           "  jlt loop\n  halt\n";
  }
  const Image img = isa::assemble(src);
  const auto rr = rand7(img);

  CpuConfig tiny = quiet();
  tiny.drc.entries = 8;
  CpuConfig big = quiet();
  big.drc.entries = 512;
  const auto r_tiny = simulate(rr.vcfr, 200000, tiny);
  const auto r_big = simulate(rr.vcfr, 200000, big);
  ASSERT_TRUE(r_tiny.halted);
  EXPECT_GT(r_tiny.drc.miss_rate(), r_big.drc.miss_rate() + 0.2);
  EXPECT_GT(r_tiny.drc_table_walks, r_big.drc_table_walks);
  EXPECT_GT(r_tiny.cycles, r_big.cycles)
      << "DRC misses on mispredicted indirect transfers must stall";
}

TEST(VcfrTimingTest, BitmapAutoDerandLoadsChargeTheBitmapCache) {
  const Image img = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, 0
    l:
      call reader
      add r1, 1
      cmp r1, 50
      jlt l
      halt
    .func reader
    reader:
      ld r2, [sp]     ; reads its randomized return address
      and r2, 0
      ret
  )");
  const auto rr = rand7(img);  // architectural: site stays randomized
  const auto r = simulate(rr.vcfr, 100000, quiet());
  ASSERT_TRUE(r.halted);
  EXPECT_GE(r.ret_bitmap.accesses, 100u);  // 50 call-marks + 50 loads
}

TEST(FetchModelTest, StraddlingInstructionsTouchTwoLines) {
  // A line-straddling instruction must generate a second IL1 access. Pad
  // with nops so a 6-byte mov crosses the 64-byte boundary.
  std::string src = ".entry main\nmain:\n";
  for (int i = 0; i < 61; ++i) src += "  nop\n";
  src += "  mov r1, 305419896\n  out r1\n  halt\n";  // starts at offset 61
  const Image img = isa::assemble(src);
  const auto r = simulate(img, 1000, quiet());
  ASSERT_TRUE(r.halted);
  // Lines 0 and 1 of the code plus nothing else: at least 2 distinct
  // IL1 demand accesses (the prefetcher covers line 1, but the demand
  // access still occurs when the straddle is detected).
  EXPECT_GE(r.il1.accesses, 2u);
  EXPECT_EQ(r.instructions, 64u);
}

TEST(FetchModelTest, IqLimitsFetchRunahead) {
  // A long div chain (blocking) with a tight IQ must not let fetch sprint
  // arbitrarily far ahead; with a 2-entry IQ the cycle count rises.
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 1000000
      mov r2, 3
      div r1, r2
      div r1, r2
      div r1, r2
      div r1, r2
      out r1
      halt
  )");
  CpuConfig wide = quiet();
  CpuConfig narrow = quiet();
  narrow.iq_size = 2;
  const auto r_wide = simulate(img, 1000, wide);
  const auto r_narrow = simulate(img, 1000, narrow);
  EXPECT_GE(r_narrow.cycles, r_wide.cycles);
}

TEST(FetchModelTest, StoreBufferBackpressure) {
  // A burst of stores larger than the store buffer must throttle issue.
  std::string src = ".entry main\nmain:\n  mov r1, @buf\n";
  for (int i = 0; i < 80; ++i) {
    src += "  st r1, [r1+" + std::to_string(i * 4) + "]\n";
  }
  src += "  halt\n.data\nbuf:\n.space 512\n";
  const Image img = isa::assemble(src);
  CpuConfig small = quiet();
  small.store_buffer = 2;
  CpuConfig big = quiet();
  big.store_buffer = 64;
  const auto r_small = simulate(img, 1000, small);
  const auto r_big = simulate(img, 1000, big);
  EXPECT_GE(r_small.cycles, r_big.cycles);
}

TEST(VcfrTimingTest, PageConfinedNaiveSparesTheITlb) {
  // The §IV-D remark, at simulator level: page-confined relocation keeps
  // the iTLB working set baseline-sized while full spread thrashes it.
  std::string src = ".entry main\nmain:\n  mov r9, 0\nloop:\n";
  for (int i = 0; i < 3000; ++i) {
    src += "  add r1, " + std::to_string(i % 9 + 1) + "\n";
  }
  src += "  add r9, 1\n  cmp r9, 20\n  jlt loop\n  halt\n";
  const Image img = isa::assemble(src);

  rewriter::RandomizeOptions fs;
  fs.seed = 4;
  const auto rr_fs = rewriter::randomize(img, fs);
  rewriter::RandomizeOptions pc = fs;
  pc.placement = rewriter::PlacementPolicy::kPageConfined;
  const auto rr_pc = rewriter::randomize(img, pc);

  const auto r_fs = simulate(rr_fs.naive, 2'000'000, quiet());
  const auto r_pc = simulate(rr_pc.naive, 2'000'000, quiet());
  ASSERT_TRUE(r_fs.halted);
  ASSERT_TRUE(r_pc.halted);
  EXPECT_GT(r_fs.itlb.miss_rate(), 10 * std::max(1e-9, r_pc.itlb.miss_rate()));
  EXPECT_GT(r_pc.ipc(), r_fs.ipc());
}

TEST(SimResultTest, RatesAndDerivedMetrics) {
  SimResult r;
  EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(r.cpi(), 0.0);
  r.instructions = 200;
  r.cycles = 400;
  EXPECT_DOUBLE_EQ(r.ipc(), 0.5);
  EXPECT_DOUBLE_EQ(r.cpi(), 2.0);
}

TEST(VcfrTimingTest, SimulatorHonorsInstructionCap) {
  const Image img = isa::assemble("spin:\n  jmp spin\n");
  const auto r = simulate(img, 5000, quiet());
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 5000u);
  EXPECT_GE(r.cycles, 5000u);
}

}  // namespace
}  // namespace vcfr::sim
