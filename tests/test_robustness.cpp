// Robustness / fuzz-style tests: hostile bytes and broken programs must
// fail cleanly (decode rejections, emulator faults), never crash or hang.
#include <gtest/gtest.h>

#include <random>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

namespace vcfr {
namespace {

class ByteSoup : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ByteSoup, DecodeNeverMisbehaves) {
  std::mt19937 rng(GetParam());
  std::vector<uint8_t> bytes(4096);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  // Decode at every offset: either a valid instruction whose length fits,
  // or nullopt. Never anything else.
  for (size_t off = 0; off < bytes.size(); ++off) {
    const auto d =
        isa::decode(std::span(bytes.data() + off, bytes.size() - off));
    if (d) {
      EXPECT_GE(d->length, 1);
      EXPECT_LE(d->length, isa::kMaxInstrLength);
      EXPECT_LE(off + d->length, bytes.size());
      // Formatting any decoded instruction is safe.
      EXPECT_FALSE(isa::format_instr(*d).empty());
    }
  }
}

TEST_P(ByteSoup, LinearSweepTerminates) {
  std::mt19937 rng(GetParam() ^ 0x5eed);
  std::vector<uint8_t> bytes(8192);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  const auto listing = isa::disassemble(bytes, 0x1000);
  // Monotone addresses, no overlap.
  for (size_t i = 1; i < listing.size(); ++i) {
    EXPECT_EQ(listing[i].addr,
              listing[i - 1].addr + listing[i - 1].instr.length);
  }
}

TEST_P(ByteSoup, EmulatingGarbageFaultsCleanly) {
  std::mt19937 rng(GetParam() ^ 0xf00d);
  binary::Image img;
  img.name = "garbage";
  img.code_base = 0x1000;
  img.entry = 0x1000;
  img.code.resize(512);
  for (auto& b : img.code) b = static_cast<uint8_t>(rng());
  emu::RunLimits limits;
  limits.max_instructions = 20000;
  const auto r = emu::run_image(img, limits);
  // Any outcome is fine except a hang (the limit caps that) — and when it
  // faulted there must be a message.
  if (!r.halted && r.stats.instructions < limits.max_instructions) {
    EXPECT_FALSE(r.error.empty());
  }
}

TEST_P(ByteSoup, GadgetScanOnGarbageIsBounded) {
  std::mt19937 rng(GetParam() ^ 0xface);
  binary::Image img;
  img.code_base = 0x1000;
  img.code.resize(4096);
  for (auto& b : img.code) b = static_cast<uint8_t>(rng());
  const auto result = gadget::scan(img);
  EXPECT_EQ(result.bytes_scanned, img.code.size());
  for (const auto& g : result.gadgets) {
    EXPECT_GE(g.addr, img.code_base);
    EXPECT_LT(g.addr, img.code_base + img.code.size());
    EXPECT_LE(g.instrs.size(), gadget::ScanOptions{}.max_instrs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteSoup,
                         ::testing::Values(1u, 17u, 0xabcdefu));

TEST(RobustnessTest, StackUnderflowReadsZeroPage) {
  // Popping past the initial stack reads zeros (unmapped memory), which
  // then faults on the jump — cleanly.
  const auto r = emu::run_image(isa::assemble("ret\n"));
  EXPECT_FALSE(r.halted);
  EXPECT_FALSE(r.error.empty());
}

TEST(RobustnessTest, SelfModifyingStoreIsVisible) {
  // VX has no coherence games: a store over upcoming code bytes changes
  // what executes (the emulator reads memory at fetch). Overwrite the
  // upcoming `out r1` (2 bytes) with `halt` + `nop`.
  const auto img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 7
      mov r2, @patch
      mov r3, 0x0102      ; nop(0x01) halt(0x02) little-endian
      st r3, [r2]
    patch:
      out r1
      halt
  )");
  // "mov r2, patch" — a label used as a plain immediate.
  const auto r = emu::run_image(img);
  EXPECT_TRUE(r.halted) << r.error;
  EXPECT_TRUE(r.output.empty()) << "patched-out `out` must not run";
}

TEST(RobustnessTest, OutputCapIsEnforced) {
  const auto img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 0
    l:
      out r1
      add r1, 1
      cmp r1, 100
      jlt l
      halt
  )");
  emu::RunLimits limits;
  limits.max_output = 10;
  const auto r = emu::run_image(img, limits);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.output.size(), 10u);
}

}  // namespace
}  // namespace vcfr
