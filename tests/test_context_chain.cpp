// Tests for the process-context module (DRC flushes on switch and
// re-randomization) and the dynamic gadget-chain executor.
#include <gtest/gtest.h>

#include "core/context.hpp"
#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::core {
namespace {

TEST(DrcFlushTest, FlushInvalidatesEverything) {
  Drc drc({.entries = 64, .assoc = 1, .hit_latency = 1});
  for (uint32_t i = 0; i < 32; ++i) {
    drc.insert(0x40000000 + i * 64, true, {0x1000 + i, true});
  }
  const uint32_t before = drc.valid_entries();
  EXPECT_GT(before, 0u);
  EXPECT_LE(before, 32u);
  const uint32_t flushed = drc.flush();
  EXPECT_EQ(flushed, before);
  EXPECT_EQ(drc.valid_entries(), 0u);
  EXPECT_FALSE(drc.contains(0x40000000, true));
  EXPECT_EQ(drc.flush(), 0u) << "second flush finds nothing";
}

TEST(ContextTest, SwitchBetweenProcessesFlushes) {
  Drc drc({.entries = 64, .assoc = 1, .hit_latency = 1});
  ContextManager mgr(drc);
  binary::TranslationTables ta, tb;

  ProcessContext a{.pid = 1, .name = "a", .tables = &ta, .epoch = 0};
  ProcessContext b{.pid = 2, .name = "b", .tables = &tb, .epoch = 0};
  mgr.switch_to(a);
  drc.insert(0x40000100, true, {0x1100, true});
  ASSERT_EQ(drc.valid_entries(), 1u);

  const uint32_t lost = mgr.switch_to(b);
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(drc.valid_entries(), 0u)
      << "process A's translations must not leak into process B";
  EXPECT_EQ(mgr.current().pid, 2u);
  EXPECT_EQ(mgr.stats().switches, 2u);
}

TEST(ContextTest, ResumingSameContextKeepsEntries) {
  Drc drc({.entries = 64, .assoc = 1, .hit_latency = 1});
  ContextManager mgr(drc);
  binary::TranslationTables t;
  ProcessContext p{.pid = 7, .name = "p", .tables = &t, .epoch = 3};
  mgr.switch_to(p);
  drc.insert(0x40000200, true, {0x1200, true});
  EXPECT_EQ(mgr.switch_to(p), 0u) << "same pid+epoch: warm DRC survives";
  EXPECT_EQ(drc.valid_entries(), 1u);
}

TEST(ContextTest, RerandomizationBumpsEpochAndFlushes) {
  Drc drc({.entries = 64, .assoc = 1, .hit_latency = 1});
  ContextManager mgr(drc);
  binary::TranslationTables t0, t1;
  ProcessContext p{.pid = 1, .name = "svc", .tables = &t0, .epoch = 0};
  mgr.switch_to(p);
  drc.insert(0x40000300, true, {0x1300, true});

  const uint32_t lost = mgr.rerandomize_current(t1);
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(mgr.current().epoch, 1u);
  EXPECT_EQ(mgr.current().tables, &t1);
  EXPECT_EQ(mgr.stats().rerandomizations, 1u);

  // A later switch back with the *old* epoch is a different context.
  ProcessContext stale{.pid = 1, .name = "svc", .tables = &t0, .epoch = 0};
  drc.insert(0x40000400, true, {0x1400, true});
  EXPECT_EQ(mgr.switch_to(stale), 1u);
}

}  // namespace
}  // namespace vcfr::core

namespace vcfr::gadget {
namespace {

// A binary with the classic gadget pair: pop r0; ret and sys 1; ret.
constexpr const char* kVictim = R"(
  .entry main
  .func main
  main:
    mov r0, 0
    halt
  .func restore
  restore:
    pop r0
    ret
  .func write_stub
  write_stub:
    sys 1
    ret
)";

std::vector<uint32_t> marker_chain(const binary::Image& image) {
  const auto pool = scan(image);
  uint32_t pop_addr = 0, sys_addr = 0;
  for (const auto& g : pool.gadgets) {
    if (g.kind == GadgetKind::kPopReg && g.instrs.front().rd == 0 &&
        pop_addr == 0) {
      pop_addr = g.addr;
    }
    if (g.kind == GadgetKind::kSys && sys_addr == 0) sys_addr = g.addr;
  }
  EXPECT_NE(pop_addr, 0u);
  EXPECT_NE(sys_addr, 0u);
  return {pop_addr, 0xfeedu, sys_addr};
}

TEST(ChainExecutionTest, ChainRunsOnOriginalImage) {
  const auto image = isa::assemble(kVictim);
  const auto chain = marker_chain(image);
  const auto r = execute_chain(image, chain);
  ASSERT_FALSE(r.output.empty()) << r.fault;
  EXPECT_EQ(r.output[0], 0xfeedu) << "the chain must exfiltrate the marker";
}

TEST(ChainExecutionTest, ChainBlockedOnVcfrImage) {
  const auto image = isa::assemble(kVictim);
  const auto chain = marker_chain(image);
  rewriter::RandomizeOptions opts;
  opts.seed = 1234;
  const auto rr = rewriter::randomize(image, opts);
  const auto r = execute_chain(rr.vcfr, chain);
  EXPECT_TRUE(r.faulted);
  EXPECT_TRUE(r.output.empty()) << "no exfiltration through VCFR";
  EXPECT_NE(r.fault.find("randomized-tag"), std::string::npos) << r.fault;
}

TEST(ChainExecutionTest, ChainBlockedOnNaiveImage) {
  const auto image = isa::assemble(kVictim);
  const auto chain = marker_chain(image);
  const auto rr = rewriter::randomize(image, {});
  const auto r = execute_chain(rr.naive, chain);
  EXPECT_TRUE(r.faulted);
  EXPECT_TRUE(r.output.empty());
}

TEST(ChainExecutionTest, EmptyChainIsRejected) {
  const auto image = isa::assemble(kVictim);
  const auto r = execute_chain(image, {});
  EXPECT_TRUE(r.faulted);
}

TEST(ChainExecutionTest, SurvivingFailoverGadgetsStillRunButCannotExfiltrate) {
  // Under VCFR the failover set remains executable; a chain built purely
  // from surviving gadgets runs — the security argument is that the
  // surviving pool is too poor to assemble a *payload* (fig11). Verify
  // both halves on the xalan-style computed-cluster pattern.
  const auto image = isa::assemble(R"(
    .entry main
    .func main
    main:
      mov r1, @cluster
      add r1, 0
      jmpr r1
      halt
    .func cluster
    cluster:
      add r11, 5
      ret
  )");
  rewriter::RandomizeOptions opts;
  const auto rr = rewriter::randomize(image, opts);
  ASSERT_FALSE(rr.vcfr.tables.unrandomized.empty());

  const auto scan_result = scan(image);
  const auto survival =
      survival_after_randomization(scan_result, rr.vcfr.tables);
  const auto payloads = compile_payloads(survival.surviving);
  EXPECT_FALSE(any_assembled(payloads))
      << "failover gadgets alone must not form a payload";
}

}  // namespace
}  // namespace vcfr::gadget
