// Systematic per-opcode semantics tests: every VX instruction checked
// against independently computed expected values (including wraparound,
// shifts masked to 5 bits, byte truncation, and stack discipline).
#include <gtest/gtest.h>

#include "emu/emulator.hpp"
#include "isa/assembler.hpp"

namespace vcfr::emu {
namespace {

uint32_t run1(const std::string& body) {
  const auto r = run_image(isa::assemble(".entry main\nmain:\n" + body +
                                         "  out r1\n  halt\n"));
  EXPECT_TRUE(r.halted) << r.error << "\n" << body;
  EXPECT_EQ(r.output.size(), 1u);
  return r.output.empty() ? 0xdeadbeef : r.output[0];
}

TEST(OpcodeTest, MovRegAndImm) {
  EXPECT_EQ(run1("  mov r1, 4294967295\n"), 0xffffffffu);
  EXPECT_EQ(run1("  mov r2, 77\n  mov r1, r2\n"), 77u);
}

TEST(OpcodeTest, AddSubWraparound) {
  EXPECT_EQ(run1("  mov r1, 4294967295\n  add r1, 2\n"), 1u);
  EXPECT_EQ(run1("  mov r1, 0\n  sub r1, 1\n"), 0xffffffffu);
  EXPECT_EQ(run1("  mov r1, 100\n  mov r2, 58\n  sub r1, r2\n"), 42u);
}

TEST(OpcodeTest, MulUnsignedWrap) {
  EXPECT_EQ(run1("  mov r1, 65536\n  mul r1, 65536\n"), 0u);
  EXPECT_EQ(run1("  mov r1, 3\n  mov r2, 7\n  mul r1, r2\n"), 21u);
}

TEST(OpcodeTest, DivUnsigned) {
  EXPECT_EQ(run1("  mov r1, 100\n  mov r2, 7\n  div r1, r2\n"), 14u);
  EXPECT_EQ(run1("  mov r1, 4294967295\n  mov r2, 2\n  div r1, r2\n"),
            0x7fffffffu)
      << "division is unsigned";
}

TEST(OpcodeTest, Bitwise) {
  EXPECT_EQ(run1("  mov r1, 0xff0f\n  and r1, 0x0ff0\n"), 0x0f00u);
  EXPECT_EQ(run1("  mov r1, 0xf0\n  or r1, 0x0f\n"), 0xffu);
  EXPECT_EQ(run1("  mov r1, 0xffff\n  xor r1, 0xff00\n"), 0x00ffu);
  EXPECT_EQ(run1("  mov r1, 5\n  mov r2, 3\n  and r1, r2\n"), 1u);
}

TEST(OpcodeTest, ShiftsMaskTo5Bits) {
  EXPECT_EQ(run1("  mov r1, 1\n  shl r1, 4\n"), 16u);
  EXPECT_EQ(run1("  mov r1, 256\n  shr r1, 4\n"), 16u);
  // Shift amounts wrap modulo 32 (x86 semantics).
  EXPECT_EQ(run1("  mov r1, 1\n  shl r1, 33\n"), 2u);
  EXPECT_EQ(run1("  mov r1, 8\n  mov r2, 35\n  shr r1, r2\n"), 1u);
}

TEST(OpcodeTest, LoadStoreWordAndByte) {
  EXPECT_EQ(run1("  mov r2, 0x10000000\n"
                 "  mov r3, 0x11223344\n"
                 "  st r3, [r2]\n"
                 "  ld r1, [r2]\n"),
            0x11223344u);
  EXPECT_EQ(run1("  mov r2, 0x10000000\n"
                 "  mov r3, 0x11223344\n"
                 "  st r3, [r2]\n"
                 "  ldb r1, [r2+1]\n"),
            0x33u)
      << "little-endian byte extraction";
  EXPECT_EQ(run1("  mov r2, 0x10000000\n"
                 "  mov r3, 0x1ff\n"
                 "  stb r3, [r2]\n"
                 "  ld r1, [r2]\n"),
            0xffu)
      << "stb truncates to one byte";
}

TEST(OpcodeTest, NegativeDisplacement) {
  EXPECT_EQ(run1("  mov r2, 0x10000010\n"
                 "  mov r3, 9\n"
                 "  st r3, [r2-16]\n"
                 "  mov r4, 0x10000000\n"
                 "  ld r1, [r4]\n"),
            9u);
}

TEST(OpcodeTest, PushPopLifo) {
  EXPECT_EQ(run1("  mov r2, 1\n  mov r3, 2\n"
                 "  push r2\n  push r3\n"
                 "  pop r1\n  pop r4\n"
                 "  shl r1, 8\n  or r1, r4\n"),
            0x201u);
  // push imm (the software-rewrite helper instruction).
  EXPECT_EQ(run1("  push 4660\n  pop r1\n"), 4660u);
}

TEST(OpcodeTest, CallPushesReturnAndRetPops) {
  const auto r = run_image(isa::assemble(R"(
    .entry main
    main:
      call probe
      out r1
      halt
    probe:
      ld r1, [sp]     ; the return address = address of `out r1`
      ret
  )"));
  ASSERT_TRUE(r.halted);
  // call is at 0x1000, 5 bytes long -> return address 0x1005.
  EXPECT_EQ(r.output[0], 0x1005u);
}

TEST(OpcodeTest, JmpRIndirect) {
  EXPECT_EQ(run1("  mov r2, @target\n"
                 "  jmpr r2\n"
                 "  mov r1, 0\n"
                 "  out r1\n"
                 "  halt\n"
                 "target:\n"
                 "  mov r1, 5\n"),
            5u);
}

TEST(OpcodeTest, NopChangesNothing) {
  EXPECT_EQ(run1("  mov r1, 123\n  nop\n  nop\n  nop\n"), 123u);
}

TEST(OpcodeTest, SysZeroExitsImmediately) {
  const auto r = run_image(isa::assemble(R"(
    .entry main
    main:
      mov r0, 1
      sys 0
      out r0
      halt
  )"));
  EXPECT_TRUE(r.halted);
  EXPECT_TRUE(r.output.empty());
}

TEST(OpcodeTest, OutAndSysOneEmitDifferentRegisters) {
  const auto r = run_image(isa::assemble(R"(
    .entry main
    main:
      mov r0, 10
      mov r5, 20
      sys 1     ; emits r0
      out r5    ; emits r5
      halt
  )"));
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], 10u);
  EXPECT_EQ(r.output[1], 20u);
}

}  // namespace
}  // namespace vcfr::emu
