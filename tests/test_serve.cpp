// The request-serving subsystem (ARCHITECTURE.md §12): request lifecycle
// accounting, exact percentiles, both arrival models, and the bit-level
// determinism contract the committed BENCH_serve.json relies on —
// including under fault injection with restart recovery.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "serve/server.hpp"

namespace vcfr::serve {
namespace {

TEST(NearestRankTest, ExactPercentiles) {
  EXPECT_EQ(nearest_rank_permille({}, 500), 0u);
  EXPECT_EQ(nearest_rank_permille({42}, 500), 42u);
  EXPECT_EQ(nearest_rank_permille({42}, 999), 42u);
  const std::vector<uint64_t> v = {10, 20, 30, 40};
  EXPECT_EQ(nearest_rank_permille(v, 500), 20u);   // ceil(0.5*4)=2nd
  EXPECT_EQ(nearest_rank_permille(v, 990), 40u);   // ceil(0.99*4)=4th
  EXPECT_EQ(nearest_rank_permille(v, 1), 10u);     // rank clamps to 1
  std::vector<uint64_t> hundred;
  for (uint64_t i = 1; i <= 100; ++i) hundred.push_back(i);
  EXPECT_EQ(nearest_rank_permille(hundred, 500), 50u);
  EXPECT_EQ(nearest_rank_permille(hundred, 990), 99u);
  EXPECT_EQ(nearest_rank_permille(hundred, 999), 100u);
}

ServeConfig small_config() {
  ServeConfig sc;
  sc.tenants = 8;
  sc.cores = 4;
  sc.duration = 100'000;
  sc.mean_interarrival = 10'000;
  sc.seed = 7;
  return sc;
}

TEST(ServeTest, OpenLoopSmokeAcrossCores) {
  const ServeReport r = run_serve(small_config());
  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.completed, r.generated);  // no faults armed: all drain
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.tenants_down, 0u);
  EXPECT_GT(r.throughput_per_mcycle, 0.0);
  EXPECT_EQ(r.tenants.size(), 8u);
  uint64_t sum = 0;
  for (const TenantReport& t : r.tenants) {
    EXPECT_LT(t.core, 4u);
    EXPECT_EQ(t.completed + t.failed, t.records.size());
    sum += t.completed;
    if (t.completed == 0) continue;
    EXPECT_LE(t.p50, t.p99);
    EXPECT_LE(t.p99, t.p999);
    EXPECT_LE(t.p999, t.max);
    for (const RequestRecord& rec : t.records) {
      EXPECT_GE(rec.dispatch, rec.arrival);
      EXPECT_GE(rec.completion, rec.dispatch);
      if (!rec.failed) {
        EXPECT_GT(rec.instructions, 0u);
      }
    }
  }
  EXPECT_EQ(sum, r.completed);
}

TEST(ServeTest, SameSeedIsByteIdentical) {
  const ServeReport a = run_serve(small_config());
  const ServeReport b = run_serve(small_config());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.latency_csv(), b.latency_csv());
}

TEST(ServeTest, DifferentSeedsDiverge) {
  ServeConfig sc = small_config();
  const ServeReport a = run_serve(sc);
  sc.seed = 8;
  const ServeReport b = run_serve(sc);
  EXPECT_NE(a.latency_csv(), b.latency_csv());
}

TEST(ServeTest, ClosedLoopKeepsOneOutstanding) {
  ServeConfig sc = small_config();
  sc.model = ArrivalModel::kClosed;
  const ServeReport r = run_serve(sc);
  EXPECT_GT(r.generated, 0u);
  EXPECT_EQ(r.completed, r.generated);
  for (const TenantReport& t : r.tenants) {
    EXPECT_LE(t.queue_peak, 1u);
    // With nothing ever queued behind an in-flight request, dispatch
    // follows arrival within one delivery round.
    for (const RequestRecord& rec : t.records) {
      EXPECT_GE(rec.dispatch, rec.arrival);
    }
  }
}

TEST(ServeTest, IdleStreamsTerminate) {
  // First arrivals land far past the horizon: the run must still start,
  // drain the boot lives, and return with zero requests.
  ServeConfig sc = small_config();
  sc.duration = 10;  // no gap draw is <= 10 with mean 10000
  sc.mean_interarrival = 10'000;
  const ServeReport r = run_serve(sc);
  EXPECT_EQ(r.generated, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.tenants_down, 0u);
}

TEST(ServeTest, MixedWorkloadTenants) {
  ServeConfig sc = small_config();
  sc.workloads = {"server", "bzip2", "mcf"};
  sc.scale = 0;
  sc.duration = 50'000;
  const ServeReport r = run_serve(sc);
  EXPECT_EQ(r.tenants[0].workload, "server");
  EXPECT_EQ(r.tenants[1].workload, "bzip2");
  EXPECT_EQ(r.tenants[2].workload, "mcf");
  EXPECT_EQ(r.tenants[3].workload, "server");
  EXPECT_EQ(r.completed, r.generated);
}

ServeConfig inject_config() {
  ServeConfig sc;
  sc.tenants = 4;
  sc.cores = 2;
  sc.duration = 100'000;
  sc.mean_interarrival = 5'000;
  sc.seed = 7;
  sc.restart.mode = os::RestartPolicy::Mode::kOnFault;
  fault::FaultPlan plan;
  plan.site = fault::FaultSite::kCodeByte;
  plan.at_instruction = 50;
  plan.seed = 3;
  sc.injections.emplace_back(2u, plan);
  return sc;
}

TEST(ServeTest, InjectedFaultRestartsAndPreservesQueue) {
  const ServeReport r = run_serve(inject_config());
  const TenantReport& victim = r.tenants[2];
  EXPECT_GE(victim.failed, 1u);
  EXPECT_GE(victim.restarts, 1u);
  EXPECT_FALSE(victim.down);
  // The queue survived the crash: every generated request was eventually
  // served or accounted as the failed one — none dropped.
  EXPECT_EQ(victim.dropped, 0u);
  EXPECT_EQ(victim.completed + victim.failed, victim.generated);
  EXPECT_GE(victim.completed, 1u);  // served again after the restart
  for (uint32_t pid : {0u, 1u, 3u}) {
    EXPECT_EQ(r.tenants[pid].failed, 0u);
    EXPECT_EQ(r.tenants[pid].restarts, 0u);
  }
}

TEST(ServeTest, InjectedRunIsByteIdentical) {
  const ServeReport a = run_serve(inject_config());
  const ServeReport b = run_serve(inject_config());
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.latency_csv(), b.latency_csv());
}

}  // namespace
}  // namespace vcfr::serve
