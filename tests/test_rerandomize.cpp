// Live re-randomization tests (§V-C): swap a running VCFR process onto a
// freshly randomized image mid-run, preserving semantics.
#include <gtest/gtest.h>

#include "emu/rerandomize.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::emu {
namespace {

// Deep recursion: at mid-run the stack carries several randomized return
// addresses, all of which must survive the epoch change.
constexpr const char* kProgram = R"(
  .name victim
  .entry main
  .func main
  main:
    mov r1, 8
    call fact
    out r2
    mov r1, 6
    call fact
    out r2
    halt
  .func fact
  fact:
    cmp r1, 1
    jgt rec
    mov r2, 1
    ret
  rec:
    push r1
    sub r1, 1
    call fact
    pop r1
    mul r2, r1
    ret
)";

struct Session {
  binary::Memory mem;
  rewriter::RandomizeResult rr;
  std::unique_ptr<Emulator> emu;
};

Session start(uint64_t seed) {
  Session s;
  const auto img = isa::assemble(kProgram);
  rewriter::RandomizeOptions opts;
  opts.seed = seed;
  s.rr = rewriter::randomize(img, opts);
  binary::load(s.rr.vcfr, s.mem);
  s.emu = std::make_unique<Emulator>(s.rr.vcfr, s.mem);
  return s;
}

TEST(LiveRerandomizeTest, MidRecursionSwapPreservesSemantics) {
  // Reference run.
  const auto img = isa::assemble(kProgram);
  const auto golden = run_image(img);
  ASSERT_TRUE(golden.halted);
  ASSERT_EQ(golden.output.size(), 2u);
  EXPECT_EQ(golden.output[0], 40320u);  // 8!
  EXPECT_EQ(golden.output[1], 720u);    // 6!

  for (uint64_t swap_at : {5ull, 17ull, 33ull, 50ull}) {
    Session s = start(/*seed=*/11);
    for (uint64_t i = 0; i < swap_at; ++i) ASSERT_TRUE(s.emu->step());
    const size_t marked_before = s.emu->ret_bitmap().size();

    rewriter::RandomizeOptions fresh;
    fresh.seed = 0xfeed0000 + swap_at;
    const auto new_rr = rewriter::randomize(isa::assemble(kProgram), fresh);

    LiveRerandomizeStats stats;
    auto fresh_emu =
        rerandomize_live(*s.emu, s.mem, s.rr, new_rr, &stats);
    EXPECT_EQ(stats.stack_slots_translated, marked_before);

    fresh_emu->set_enforce_tags(true);
    RunLimits limits;
    limits.max_instructions = 100000;
    const auto r = fresh_emu->run(limits);
    EXPECT_TRUE(r.halted) << "swap at " << swap_at << ": " << r.error;
    EXPECT_EQ(r.output, golden.output) << "swap at " << swap_at;
    EXPECT_EQ(r.stats.tag_violations, 0u);
  }
}

TEST(LiveRerandomizeTest, OldAddressesAreDeadAfterSwap) {
  Session s = start(7);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(s.emu->step());

  // The attacker leaks one old randomized address before the swap.
  const uint32_t leaked = s.emu->state().pc;
  ASSERT_TRUE(s.rr.vcfr.tables.is_randomized_addr(leaked));

  rewriter::RandomizeOptions fresh;
  fresh.seed = 999;
  const auto new_rr = rewriter::randomize(isa::assemble(kProgram), fresh);
  auto fresh_emu = rerandomize_live(*s.emu, s.mem, s.rr, new_rr, nullptr);

  // In the new epoch the leaked address maps to nothing.
  EXPECT_FALSE(new_rr.vcfr.tables.is_randomized_addr(leaked))
      << "a leaked epoch-0 address must be meaningless in epoch 1 "
         "(astronomically unlikely collision aside)";
}

TEST(LiveRerandomizeTest, RepeatedSwapsKeepWorking) {
  const auto golden = run_image(isa::assemble(kProgram));
  Session s = start(1);
  auto cur_rr = s.rr;
  auto cur = std::move(s.emu);
  std::vector<rewriter::RandomizeResult> epochs;
  epochs.reserve(6);
  uint64_t steps = 0;
  RunLimits one;
  one.max_instructions = 1;
  // Re-randomize every 9 instructions, six times, then run to completion.
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 9; ++i) {
      ASSERT_TRUE(cur->step());
      ++steps;
    }
    rewriter::RandomizeOptions fresh;
    fresh.seed = 1000 + epoch;
    epochs.push_back(rewriter::randomize(isa::assemble(kProgram), fresh));
    cur = rerandomize_live(*cur, s.mem, cur_rr, epochs.back(), nullptr);
    cur_rr = epochs.back();
  }
  RunLimits limits;
  limits.max_instructions = 100000;
  const auto r = cur->run(limits);
  EXPECT_TRUE(r.halted) << r.error;
  EXPECT_EQ(r.output, golden.output);
}

TEST(LiveRerandomizeTest, RejectsNonVcfrImages) {
  Session s = start(1);
  rewriter::RandomizeResult bogus = s.rr;
  bogus.vcfr.layout = binary::Layout::kOriginal;
  EXPECT_THROW(
      (void)rerandomize_live(*s.emu, s.mem, s.rr, bogus, nullptr),
      std::invalid_argument);
}

}  // namespace
}  // namespace vcfr::emu
