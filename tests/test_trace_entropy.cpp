// Tests for the execution tracer, the entropy report, and the CFG dot
// export.
#include <gtest/gtest.h>

#include "emu/trace.hpp"
#include "isa/assembler.hpp"
#include "rewriter/cfg.hpp"
#include "rewriter/entropy.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/suite.hpp"

namespace vcfr {
namespace {

const char* kProg = R"(
  .entry main
  .func main
  main:
    mov r1, 3
    call triple
    out r1
    halt
  .func triple
  triple:
    mul r1, 3
    ret
)";

TEST(TraceTest, OriginalLayoutShowsSinglePc) {
  const auto img = isa::assemble(kProg);
  const std::string t = emu::trace(img);
  EXPECT_NE(t.find("mov r1, 3"), std::string::npos);
  EXPECT_NE(t.find("== halted"), std::string::npos);
  EXPECT_EQ(t.find("->"), std::string::npos)
      << "no dual PC for an un-randomized image";
  EXPECT_EQ(t.find("[derand"), std::string::npos);
}

TEST(TraceTest, VcfrShowsDualPcAndTranslationEvents) {
  const auto img = isa::assemble(kProg);
  rewriter::RandomizeOptions opts;
  opts.seed = 5;
  const auto rr = rewriter::randomize(img, opts);
  const std::string t = emu::trace(rr.vcfr);
  EXPECT_NE(t.find("->"), std::string::npos);
  EXPECT_NE(t.find("[derand"), std::string::npos);
  EXPECT_NE(t.find("[rand ret"), std::string::npos);
  EXPECT_NE(t.find("== halted"), std::string::npos);
}

TEST(TraceTest, RegisterDiffsAndStepLimit) {
  const auto img = isa::assemble(kProg);
  emu::TraceOptions opts;
  opts.show_registers = true;
  const std::string t = emu::trace(img, opts);
  EXPECT_NE(t.find("r1=0x3"), std::string::npos);

  opts.show_registers = false;
  opts.max_steps = 2;
  const std::string t2 = emu::trace(img, opts);
  EXPECT_EQ(t2.find("halted"), std::string::npos);
  // Exactly two trace lines.
  EXPECT_EQ(std::count(t2.begin(), t2.end(), '\n'), 2);
}

TEST(TraceTest, FaultAppearsInTrace) {
  const auto img = isa::assemble("jmp 0x9000\n");
  const std::string t = emu::trace(img);
  EXPECT_NE(t.find("== FAULT"), std::string::npos);
  EXPECT_NE(t.find("invalid opcode"), std::string::npos);
}

TEST(EntropyTest, FullSpreadReportsHighEntropy) {
  const auto img = workloads::make("xalan", 0);
  rewriter::RandomizeOptions opts;
  const auto rr = rewriter::randomize(img, opts);
  const auto report = rewriter::analyze_entropy(rr, opts);
  EXPECT_GT(report.bits_per_instruction, 14.0);
  EXPECT_GT(report.expected_attempts, 10000.0);
  EXPECT_GT(report.coverage(), 0.80);
  EXPECT_GT(report.failover_instructions, 0u)
      << "xalan's computed cluster is the zero-entropy residue";
  EXPECT_NEAR(report.single_guess_probability * report.expected_attempts, 1.0,
              1e-9);
}

TEST(EntropyTest, PageConfinementCostsBits) {
  const auto img = workloads::make("xalan", 0);
  rewriter::RandomizeOptions fs;
  const auto rr_fs = rewriter::randomize(img, fs);
  rewriter::RandomizeOptions pc;
  pc.placement = rewriter::PlacementPolicy::kPageConfined;
  const auto rr_pc = rewriter::randomize(img, pc);
  const auto e_fs = rewriter::analyze_entropy(rr_fs, fs);
  const auto e_pc = rewriter::analyze_entropy(rr_pc, pc);
  EXPECT_GT(e_fs.bits_per_instruction, e_pc.bits_per_instruction + 2.0);
  EXPECT_DOUBLE_EQ(e_pc.bits_per_instruction, 12.0);  // log2(4096)
}

TEST(CfgDotTest, EmitsWellFormedGraph) {
  const auto img = isa::assemble(kProg);
  const auto cfg = rewriter::build_cfg(img);
  const std::string dot = rewriter::to_dot(cfg);
  EXPECT_EQ(dot.rfind("digraph cfg {", 0), 0u);
  EXPECT_NE(dot.find("main"), std::string::npos);
  EXPECT_NE(dot.find("triple"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("indirect"), std::string::npos);  // the ret terminator
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace vcfr
