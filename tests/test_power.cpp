// Power-model tests: analytic SRAM scaling and the accounting arithmetic
// behind Figure 15.
#include <gtest/gtest.h>

#include "power/energy.hpp"

namespace vcfr::power {
namespace {

TEST(EnergyTest, SramEnergyGrowsWithSize) {
  const double e1k = sram_access_pj(1024, 1);
  const double e32k = sram_access_pj(32 * 1024, 1);
  const double e512k = sram_access_pj(512 * 1024, 1);
  EXPECT_LT(e1k, e32k);
  EXPECT_LT(e32k, e512k);
  // Square-root scaling: 512K/32K = 16x size -> 4x energy.
  EXPECT_NEAR(e512k / e32k, 4.0, 0.01);
}

TEST(EnergyTest, AssociativityAddsCost) {
  EXPECT_LT(sram_access_pj(32 * 1024, 1), sram_access_pj(32 * 1024, 2));
  EXPECT_LT(sram_access_pj(32 * 1024, 2), sram_access_pj(32 * 1024, 8));
}

TEST(EnergyTest, CalibrationAnchors) {
  // 32 KiB 2-way L1 around 25 pJ; 512 KiB 8-way L2 in the low hundreds.
  const double l1 = sram_access_pj(32 * 1024, 2);
  EXPECT_GT(l1, 15.0);
  EXPECT_LT(l1, 40.0);
  const double l2 = sram_access_pj(512 * 1024, 8);
  EXPECT_GT(l2, 100.0);
  EXPECT_LT(l2, 300.0);
  // A 64-entry DRC (512 B direct-mapped) costs a few pJ at most.
  EXPECT_LT(sram_access_pj(64 * 8, 1), 5.0);
}

TEST(PowerAccountTest, TotalsAndOverhead) {
  PowerAccount pw;
  pw.core = 1000.0;
  pw.il1 = 500.0;
  pw.drc = 3.0;
  pw.dram = 1e9;  // off-chip: excluded from CPU total
  EXPECT_DOUBLE_EQ(pw.cpu_total(), 1503.0);
  EXPECT_NEAR(pw.drc_overhead_percent(), 100.0 * 3.0 / 1503.0, 1e-12);
}

TEST(PowerAccountTest, EmptyAccountIsSafe) {
  PowerAccount pw;
  EXPECT_DOUBLE_EQ(pw.cpu_total(), 0.0);
  EXPECT_DOUBLE_EQ(pw.drc_overhead_percent(), 0.0);
  EXPECT_FALSE(pw.report().empty());
}

TEST(PowerAccountTest, ReportMentionsEveryStructure) {
  PowerAccount pw;
  pw.core = 1;
  const std::string r = pw.report();
  for (const char* key : {"core=", "il1=", "dl1=", "l2=", "drc=", "bpred=",
                          "btb=", "ras=", "tlb=", "dram=", "drc_overhead="}) {
    EXPECT_NE(r.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace vcfr::power
