// Gadget scanner and payload-compiler tests (the §V-B security tooling).
#include <gtest/gtest.h>

#include "gadget/payload.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace vcfr::gadget {
namespace {

using binary::Image;

TEST(ScannerTest, FindsAlignedPopRetGadget) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      pop r1
      ret
  )");
  const ScanResult r = scan(img);
  ASSERT_GE(r.gadgets.size(), 1u);
  const auto& g = r.gadgets.front();
  EXPECT_EQ(g.addr, img.entry);
  EXPECT_EQ(g.kind, GadgetKind::kPopReg);
  EXPECT_TRUE(g.aligned);
  EXPECT_EQ(g.instrs.size(), 2u);
}

TEST(ScannerTest, FindsUnalignedGadgetInsideImmediate) {
  // mov r1, imm where a byte of imm is the Ret opcode (0x65): scanning at
  // that byte offset yields a 1-instruction "ret" gadget — exactly the
  // x86 unaligned-gadget phenomenon.
  const Image img = isa::assemble(R"(
    .entry main
    main:
      mov r1, 0x65        ; encodes ...0x65 0x00 0x00 0x00
      halt
  )");
  const ScanResult r = scan(img);
  EXPECT_GE(r.unaligned_count, 1u);
  bool found = false;
  for (const auto& g : r.gadgets) {
    if (!g.aligned && g.instrs.back().op == isa::Op::kRet) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ScannerTest, DirectTransfersAbortTheWindow) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      add r1, r2
      jmp main        ; leaves the gadget: no gadget starting at add
      ret
  )");
  const ScanResult r = scan(img);
  for (const auto& g : r.gadgets) {
    EXPECT_NE(g.addr, img.entry) << "gadget must not cross a direct jmp";
  }
}

TEST(ScannerTest, ClassifiesKinds) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      st r1, [r2]
      ret
      ld r3, [r4+8]
      ret
      mov r5, r6
      ret
      add r7, 1
      ret
      sys 0
      ret
  )");
  const ScanResult r = scan(img);
  EXPECT_GE(r.count(GadgetKind::kStore), 1u);
  EXPECT_GE(r.count(GadgetKind::kLoad), 1u);
  EXPECT_GE(r.count(GadgetKind::kMovReg), 1u);
  EXPECT_GE(r.count(GadgetKind::kArith), 1u);
  EXPECT_GE(r.count(GadgetKind::kSys), 1u);
}

TEST(ScannerTest, WindowLimitsGadgetLength) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      add r1, r2
      add r1, r2
      add r1, r2
      add r1, r2
      add r1, r2
      add r1, r2
      ret
  )");
  ScanOptions narrow;
  narrow.max_instrs = 3;
  const ScanResult r = scan(img, narrow);
  for (const auto& g : r.gadgets) {
    EXPECT_LE(g.instrs.size(), 3u);
  }
  // With a 3-instruction window only the last two adds can reach the ret.
  ScanOptions wide;
  wide.max_instrs = 8;
  EXPECT_GT(scan(img, wide).gadgets.size(), r.gadgets.size());
}

TEST(SurvivalTest, RandomizationRemovesAlmostAllGadgets) {
  // A program with a realistic sprinkle of gadget heads plus one raw code
  // pointer that forces a small un-randomized failover set.
  const Image img = isa::assemble(R"(
    .entry main
    .data 0x10000000
    raw:
      .word 0x1000
    .text
    .func main
    main:
      pop r1
      st r1, [r2]
      mov r3, r4
      add r3, 5
      sys 1
      ret
  )");
  const auto scan_result = scan(img);
  ASSERT_GT(scan_result.gadgets.size(), 0u);
  const auto rr = rewriter::randomize(img, {});
  const auto survival =
      survival_after_randomization(scan_result, rr.vcfr.tables);
  EXPECT_EQ(survival.before, scan_result.gadgets.size());
  EXPECT_LT(survival.after, survival.before);
  EXPECT_GT(survival.removal_percent(), 50.0);
}

TEST(PayloadTest, AssemblesFromSufficientPool) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      pop r1
      ret
      mov r2, r1
      ret
      st r1, [r2]
      ret
      add r1, r2
      ret
      sys 0
      ret
  )");
  const auto pool = scan(img).gadgets;
  const auto payloads = compile_payloads(pool);
  ASSERT_EQ(payloads.size(), default_templates().size());
  for (const auto& p : payloads) {
    EXPECT_TRUE(p.assembled) << p.name;
    EXPECT_FALSE(p.chain.empty());
  }
  EXPECT_TRUE(any_assembled(payloads));
}

TEST(PayloadTest, FailsWithoutSysGadget) {
  const Image img = isa::assemble(R"(
    .entry main
    main:
      pop r1
      ret
      st r1, [r2]
      ret
      mov r2, r1
      ret
      add r1, 2
      ret
  )");
  const auto payloads = compile_payloads(scan(img).gadgets);
  EXPECT_FALSE(any_assembled(payloads))
      << "every template needs a sys gadget";
}

TEST(PayloadTest, EmptyPoolAssemblesNothing) {
  const auto payloads = compile_payloads({});
  EXPECT_FALSE(any_assembled(payloads));
}

}  // namespace
}  // namespace vcfr::gadget
