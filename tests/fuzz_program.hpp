// Random structured-program generator shared by the fuzz tests and the
// trace-diff debugging tool. Programs are guaranteed to terminate
// (bounded loops, DAG calls with fan-out <= 2) and to be layout-
// insensitive in their observable outputs.
#pragma once

#include <algorithm>
#include <array>
#include <random>
#include <string>

namespace vcfr {

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint32_t seed) : rng_(seed) {}

  std::string generate() {
    src_ = ".name fuzz\n.entry main\n.data 0x10000000\n";
    src_ += "buf:\n.space 1024\n";
    num_funcs_ = 3 + rng_() % 5;
    // Indirect-call table over the leaf functions.
    src_ += "leaf_jt:\n";
    src_ += ".ptr f" + std::to_string(num_funcs_ - 1) + "\n";
    src_ += ".ptr f" + std::to_string(num_funcs_ - 2) + "\n";
    src_ += ".text\n";
    src_ += ".func main\nmain:\n";
    emit_line("mov r8, @buf");
    emit_line("mov r11, 0");
    emit_line("call f0");
    emit_line("out r11");
    emit_line("halt");
    for (int f = 0; f < num_funcs_; ++f) emit_function(f);
    return src_;
  }

 private:
  void emit_line(const std::string& s) { src_ += "  " + s + "\n"; }

  std::string fresh(const char* stem) {
    return std::string(stem) + std::to_string(label_counter_++);
  }

  int reg() { return 1 + static_cast<int>(rng_() % 7); }  // r1..r7

  void emit_arith() {
    const char* ops[] = {"add", "sub", "xor", "and", "or", "mul", "shr", "shl"};
    const std::string op = ops[rng_() % 8];
    const int rd = reg();
    if (rng_() % 2 == 0) {
      emit_line(op + " r" + std::to_string(rd) + ", r" +
                std::to_string(reg()));
    } else {
      // Keep immediates clear of the code-address range: the byte-scan
      // heuristic (§IV-A, Hiser et al.) treats any pointer-sized constant
      // that matches an instruction start as a code pointer and patches
      // it — the paper's documented false-positive risk. Real programs
      // rarely carry such constants; the fuzzer must not either.
      uint32_t imm = rng_() % 2 == 0 ? rng_() % 3000
                                     : 0x00200000u + rng_() % 1000000;
      if (op == "shr" || op == "shl") imm %= 31;
      emit_line(op + " r" + std::to_string(rd) + ", " + std::to_string(imm));
    }
    emit_line("add r11, r" + std::to_string(rd));
  }

  void emit_div() {
    const int rd = reg();
    const int rs = reg();
    emit_line("or r" + std::to_string(rs) + ", 1");  // never zero
    if (rd != rs) emit_line("div r" + std::to_string(rd) + ", r" +
                            std::to_string(rs));
  }

  void emit_mem() {
    const uint32_t off = (rng_() % 255) * 4;
    const int r = reg();
    if (rng_() % 2 == 0) {
      emit_line("st r" + std::to_string(r) + ", [r8+" + std::to_string(off) +
                "]");
    } else {
      emit_line("ld r" + std::to_string(r) + ", [r8+" + std::to_string(off) +
                "]");
      emit_line("add r11, r" + std::to_string(r));
    }
  }

  void emit_branch(int func, int depth) {
    const std::string other = fresh("else_");
    const std::string join = fresh("join_");
    const char* conds[] = {"jeq", "jne", "jlt", "jge", "jb", "jae"};
    emit_line("cmp r" + std::to_string(reg()) + ", r" +
              std::to_string(reg()));
    emit_line(std::string(conds[rng_() % 6]) + " " + other);
    emit_block(func, depth + 1, /*statements=*/1 + rng_() % 3);
    emit_line("jmp " + join);
    src_ += other + ":\n";
    emit_block(func, depth + 1, 1 + rng_() % 3);
    src_ += join + ":\n";
  }

  void emit_loop(int func, int depth) {
    // Counted loop on r9/r10 by nesting depth; always terminates.
    const int counter = depth % 2 == 0 ? 9 : 10;
    const std::string head = fresh("loop_");
    emit_line("mov r" + std::to_string(counter) + ", " +
              std::to_string(1 + rng_() % 6));
    src_ += head + ":\n";
    emit_block(func, depth + 1, 1 + rng_() % 3);
    emit_line("sub r" + std::to_string(counter) + ", 1");
    emit_line("cmp r" + std::to_string(counter) + ", 0");
    emit_line("jgt " + head);
  }

  void emit_call(int func) {
    if (func + 1 >= num_funcs_) return;  // leaves call nobody
    if (calls_emitted_[func] >= 2) {     // bound total work: fan-out <= 2
      emit_arith();
      return;
    }
    ++calls_emitted_[func];
    const int span = std::min(2, num_funcs_ - func - 1);
    const int target = func + 1 + static_cast<int>(rng_() % span);
    // Preserve the loop counters across the call (callees reuse them).
    emit_line("push r9");
    emit_line("push r10");
    if (func < num_funcs_ - 2 && target >= num_funcs_ - 2 &&
        rng_() % 2 == 0) {  // never lets a leaf reach itself (recursion)
      // Indirect call through the leaf table. The pointer lives in r12,
      // which the arithmetic pool never touches: letting a code-pointer
      // value flow into the checksum would make the output layout-
      // dependent (no ILR could preserve it).
      const uint32_t slot = rng_() % 2;
      emit_line("mov r12, @leaf_jt");
      emit_line("ld r12, [r12+" + std::to_string(slot * 4) + "]");
      emit_line("callr r12");
    } else {
      emit_line("call f" + std::to_string(target));
    }
    emit_line("pop r10");
    emit_line("pop r9");
  }

  void emit_statement(int func, int depth) {
    switch (rng_() % 8) {
      case 0:
        if (depth < 2) {
          emit_loop(func, depth);
          return;
        }
        [[fallthrough]];
      case 1:
        if (depth < 3) {
          emit_branch(func, depth);
          return;
        }
        [[fallthrough]];
      case 2:
        // Calls only at function top level: a call inside a nest of loops
        // multiplies work down the whole call DAG.
        if (depth == 0) {
          emit_call(func);
        } else {
          emit_mem();
        }
        return;
      case 3:
        emit_mem();
        return;
      case 4:
        emit_div();
        return;
      default:
        emit_arith();
        return;
    }
  }

  void emit_block(int func, int depth, int statements) {
    for (int s = 0; s < statements; ++s) emit_statement(func, depth);
  }

  void emit_function(int f) {
    src_ += ".func f" + std::to_string(f) + "\nf" + std::to_string(f) + ":\n";
    const bool leaf = f >= num_funcs_ - 2;
    if (!leaf && rng_() % 4 == 0) {
      // Occasional PIC-style return-address read. The *value* must not
      // flow into observable state in a layout-sensitive way (reading
      // concrete address bits is inherently randomization-dependent; real
      // ILR leaves such code un-randomized), so mask it to zero — the
      // load still exercises the §IV-C bitmap auto-derand path.
      emit_line("ld r7, [sp]");
      emit_line("and r7, 0");
      emit_line("add r11, r7");
      emit_line("add r7, " + std::to_string(1 + rng_() % 9));
    }
    emit_block(f, 0, leaf ? 2 + rng_() % 3 : 3 + rng_() % 4);
    emit_line("ret");
  }

  std::mt19937 rng_;
  std::string src_;
  int num_funcs_ = 0;
  int label_counter_ = 0;
  std::array<int, 16> calls_emitted_{};
};


}  // namespace vcfr
