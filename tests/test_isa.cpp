// Unit and property tests for the VX ISA encoding layer.
#include <gtest/gtest.h>

#include <random>

#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/isa.hpp"

namespace vcfr::isa {
namespace {

TEST(IsaTest, LengthsMatchEncodedSize) {
  Instr nop{.op = Op::kNop};
  EXPECT_EQ(encode(nop).size(), 1u);
  Instr mov{.op = Op::kMovRI, .rd = 3, .imm = 0xdeadbeef};
  EXPECT_EQ(encode(mov).size(), 6u);
  Instr ld{.op = Op::kLd, .rd = 1, .rs = 2, .disp = -8};
  EXPECT_EQ(encode(ld).size(), 4u);
  Instr jmp{.op = Op::kJmp, .imm = 0x1000};
  EXPECT_EQ(encode(jmp).size(), 5u);
  Instr jcc{.op = Op::kJcc, .cond = Cond::kNe, .imm = 0x1000};
  EXPECT_EQ(encode(jcc).size(), 6u);
}

TEST(IsaTest, InvalidOpcodeHasZeroLength) {
  EXPECT_EQ(instr_length(0x00), 0);
  EXPECT_EQ(instr_length(0xff), 0);
  EXPECT_FALSE(is_valid_opcode(0x00));
  EXPECT_TRUE(is_valid_opcode(static_cast<uint8_t>(Op::kRet)));
}

TEST(IsaTest, DecodeRejectsShortBuffer) {
  const auto bytes = encode(Instr{.op = Op::kMovRI, .rd = 1, .imm = 42});
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(decode(std::span(bytes.data(), n)).has_value()) << n;
  }
  EXPECT_TRUE(decode(std::span(bytes.data(), bytes.size())).has_value());
}

TEST(IsaTest, DecodeRejectsBadRegisterAndCond) {
  // MovRI with register byte >= 16.
  std::vector<uint8_t> bad = {static_cast<uint8_t>(Op::kMovRI), 16, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bad).has_value());
  // Jcc with condition byte > kAe.
  std::vector<uint8_t> badcc = {static_cast<uint8_t>(Op::kJcc), 8, 0, 0, 0, 0};
  EXPECT_FALSE(decode(badcc).has_value());
}

TEST(IsaTest, RegisterNames) {
  EXPECT_EQ(parse_reg("r0"), 0);
  EXPECT_EQ(parse_reg("r15"), 15);
  EXPECT_EQ(parse_reg("sp"), kSp);
  EXPECT_FALSE(parse_reg("r16").has_value());
  EXPECT_FALSE(parse_reg("x1").has_value());
  EXPECT_FALSE(parse_reg("r").has_value());
  EXPECT_EQ(reg_name(kSp), "sp");
  EXPECT_EQ(reg_name(3), "r3");
}

TEST(IsaTest, CondRoundTrip) {
  for (int c = 0; c <= static_cast<int>(Cond::kAe); ++c) {
    const auto cond = static_cast<Cond>(c);
    EXPECT_EQ(parse_cond(cond_name(cond)), cond);
  }
  EXPECT_FALSE(parse_cond("zz").has_value());
}

// Property: encode/decode round-trips for randomly generated instructions.
class EncodingRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EncodingRoundTrip, RandomInstructions) {
  std::mt19937 rng(GetParam());
  constexpr Op kOps[] = {
      Op::kNop,   Op::kHalt,  Op::kSys,   Op::kOut,   Op::kMovRR, Op::kMovRI,
      Op::kLd,    Op::kSt,    Op::kLdb,   Op::kStb,   Op::kAddRR, Op::kSubRR,
      Op::kAndRR, Op::kOrRR,  Op::kXorRR, Op::kShlRR, Op::kShrRR, Op::kMulRR,
      Op::kDivRR, Op::kAddRI, Op::kSubRI, Op::kAndRI, Op::kOrRI,  Op::kXorRI,
      Op::kShlRI, Op::kShrRI, Op::kMulRI, Op::kCmpRR, Op::kCmpRI, Op::kTestRR,
      Op::kJmp,   Op::kJcc,   Op::kJmpR,  Op::kCall,  Op::kCallR, Op::kRet,
      Op::kPushR, Op::kPopR};
  for (int i = 0; i < 500; ++i) {
    Instr in;
    in.op = kOps[rng() % std::size(kOps)];
    in.cond = static_cast<Cond>(rng() % 8);
    in.rd = static_cast<uint8_t>(rng() % kNumRegs);
    in.rs = static_cast<uint8_t>(rng() % kNumRegs);
    in.imm = static_cast<uint32_t>(rng());
    if (in.op == Op::kSys) in.imm &= 0xff;
    in.disp = static_cast<int16_t>(rng());

    const auto bytes = encode(in);
    ASSERT_EQ(bytes.size(), instr_length(static_cast<uint8_t>(in.op)));
    const auto back = decode(bytes);
    ASSERT_TRUE(back.has_value()) << format_instr(in);
    EXPECT_EQ(back->op, in.op);
    EXPECT_EQ(back->length, bytes.size());
    switch (in.op) {
      case Op::kNop:
      case Op::kHalt:
      case Op::kRet:
        break;
      case Op::kSys:
        EXPECT_EQ(back->imm, in.imm);
        break;
      case Op::kJmp:
      case Op::kCall:
        EXPECT_EQ(back->imm, in.imm);
        break;
      case Op::kJcc:
        EXPECT_EQ(back->cond, in.cond);
        EXPECT_EQ(back->imm, in.imm);
        break;
      case Op::kLd:
      case Op::kSt:
      case Op::kLdb:
      case Op::kStb:
        EXPECT_EQ(back->rd, in.rd);
        EXPECT_EQ(back->rs, in.rs);
        EXPECT_EQ(back->disp, in.disp);
        break;
      case Op::kMovRI:
      case Op::kAddRI:
      case Op::kSubRI:
      case Op::kAndRI:
      case Op::kOrRI:
      case Op::kXorRI:
      case Op::kShlRI:
      case Op::kShrRI:
      case Op::kMulRI:
      case Op::kCmpRI:
        EXPECT_EQ(back->rd, in.rd);
        EXPECT_EQ(back->imm, in.imm);
        break;
      default:
        EXPECT_EQ(back->rd, in.rd);
        EXPECT_EQ(back->rs, in.rs);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

TEST(DisassemblerTest, LinearSweepStopsAtInvalidByte) {
  std::vector<uint8_t> bytes = encode(Instr{.op = Op::kNop});
  const auto ret = encode(Instr{.op = Op::kRet});
  bytes.insert(bytes.end(), ret.begin(), ret.end());
  bytes.push_back(0x00);  // invalid
  const auto entries = disassemble(bytes, 0x1000);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].addr, 0x1000u);
  EXPECT_EQ(entries[1].addr, 0x1001u);
  EXPECT_EQ(entries[1].instr.op, Op::kRet);
}

TEST(DisassemblerTest, FormatsOperands) {
  EXPECT_EQ(format_instr(Instr{.op = Op::kLd, .rd = 1, .rs = 2, .disp = -8}),
            "ld r1, [r2-8]");
  EXPECT_EQ(format_instr(Instr{.op = Op::kJcc, .cond = Cond::kGe, .imm = 16}),
            "jge 0x10");
  EXPECT_EQ(format_instr(Instr{.op = Op::kMovRR, .rd = 14, .rs = 3}),
            "mov sp, r3");
}

}  // namespace
}  // namespace vcfr::isa
