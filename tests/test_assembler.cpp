// Tests for the two-pass assembler: directives, operands, labels,
// relocations, and error reporting.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

namespace vcfr::isa {
namespace {

using binary::Image;

TEST(AssemblerTest, MinimalProgram) {
  const Image img = assemble(R"(
    .name tiny
    .entry main
    main:
      mov r1, 7
      out r1
      halt
  )");
  EXPECT_EQ(img.name, "tiny");
  EXPECT_EQ(img.entry, binary::kDefaultCodeBase);
  const auto listing = disassemble(img);
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].instr.op, Op::kMovRI);
  EXPECT_EQ(listing[1].instr.op, Op::kOut);
  EXPECT_EQ(listing[2].instr.op, Op::kHalt);
}

TEST(AssemblerTest, LabelsResolveForwardAndBackward) {
  const Image img = assemble(R"(
    .entry main
    main:
      jmp fwd
    back:
      halt
    fwd:
      jmp back
  )");
  const auto listing = disassemble(img);
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].instr.imm, listing[2].addr);  // fwd
  EXPECT_EQ(listing[2].instr.imm, listing[1].addr);  // back
}

TEST(AssemblerTest, MemoryOperands) {
  const Image img = assemble(R"(
    ld r1, [r2]
    ld r3, [r4+16]
    st r5, [sp-4]
  )");
  const auto listing = disassemble(img);
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].instr.disp, 0);
  EXPECT_EQ(listing[1].instr.disp, 16);
  EXPECT_EQ(listing[2].instr.rs, kSp);
  EXPECT_EQ(listing[2].instr.disp, -4);
}

TEST(AssemblerTest, DataSectionAndPointers) {
  const Image img = assemble(R"(
    .entry main
    .data 0x10000000
    table:
      .ptr f1
      .ptr f2
      .word 99
      .byte 7
      .space 3
    .text
    main:
      halt
    f1:
      ret
    f2:
      ret
  )");
  ASSERT_EQ(img.relocs.size(), 2u);
  EXPECT_EQ(img.relocs[0].data_addr, 0x10000000u);
  EXPECT_EQ(img.relocs[1].data_addr, 0x10000004u);
  const auto listing = disassemble(img);
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(img.read_data32(0x10000000), listing[1].addr);  // f1
  EXPECT_EQ(img.read_data32(0x10000004), listing[2].addr);  // f2
  EXPECT_EQ(img.read_data32(0x10000008), 99u);
  EXPECT_EQ(img.data[12], 7u);
  EXPECT_EQ(img.data.size(), 16u);
}

TEST(AssemblerTest, AddressImmediate) {
  const Image img = assemble(R"(
    .data 0x10000000
    buf:
      .space 16
    .text
    mov r1, @buf
    halt
  )");
  const auto listing = disassemble(img);
  EXPECT_EQ(listing[0].instr.imm, 0x10000000u);
}

TEST(AssemblerTest, FunctionSymbols) {
  const Image img = assemble(R"(
    .entry main
    .func main
    main:
      call helper
      halt
    .func helper
    helper:
      ret
  )");
  ASSERT_EQ(img.functions.size(), 2u);
  EXPECT_EQ(img.functions[0].name, "main");
  EXPECT_EQ(img.functions[1].name, "helper");
  EXPECT_EQ(img.functions[1].addr, disassemble(img)[2].addr);
}

TEST(AssemblerTest, ConditionalMnemonics) {
  const Image img = assemble(R"(
    l:
      jeq l
      jne l
      jlt l
      jle l
      jgt l
      jge l
      jb l
      jae l
  )");
  const auto listing = disassemble(img);
  ASSERT_EQ(listing.size(), 8u);
  EXPECT_EQ(listing[0].instr.cond, Cond::kEq);
  EXPECT_EQ(listing[7].instr.cond, Cond::kAe);
}

TEST(AssemblerTest, CommentsAndWhitespace) {
  const Image img = assemble(
      "  ; leading comment\n"
      "main:   # trailing style\n"
      "  nop ; mid\n"
      "\n"
      "  halt\n");
  EXPECT_EQ(disassemble(img).size(), 2u);
}

TEST(AssemblerErrorTest, ReportsLineNumbers) {
  try {
    (void)assemble("nop\nbogus r1\n");
    FAIL() << "expected AsmError";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("asm:2"), std::string::npos);
  }
}

TEST(AssemblerErrorTest, RejectsCommonMistakes) {
  EXPECT_THROW((void)assemble("jmp nowhere\nnowhere_else:\n"), std::runtime_error);
  EXPECT_THROW((void)assemble("mov r1\n"), std::runtime_error);
  EXPECT_THROW((void)assemble("mov r99, 1\n"), std::runtime_error);
  EXPECT_THROW((void)assemble("ld r1, [r2+99999]\n"), std::runtime_error);
  EXPECT_THROW((void)assemble("dup:\ndup:\n"), std::runtime_error);
  EXPECT_THROW((void)assemble(".entry missing\n"), std::runtime_error);
  EXPECT_THROW((void)assemble(".bogus 1\n"), std::runtime_error);
  EXPECT_THROW((void)assemble(".data\n nop\n"), std::runtime_error);
}

}  // namespace
}  // namespace vcfr::isa
