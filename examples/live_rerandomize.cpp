// Live re-randomization demo (§V-C): a long-running "service" process is
// re-randomized *while it runs*, every few requests, without dropping
// state — and an attacker's leaked layout knowledge expires at each epoch.
//
//   epoch 0: attacker leaks a gadget address from the current tables
//   epoch 1: the same address no longer names anything executable
//
// The §IV-C stack bitmap is what makes the swap tractable: it points at
// exactly the words holding randomized return addresses.
#include <cstdio>

#include "emu/rerandomize.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace {

// The service: an accumulator loop where each "request" is a batch of
// work ending in an `out` (the response).
constexpr const char* kService = R"(
  .name service
  .entry main
  .func main
  main:
    mov r9, 0          ; request counter
  serve:
    mov r1, r9
    add r1, 3
    call handle
    out r2             ; respond
    add r9, 1
    cmp r9, 12
    jlt serve
    halt
  .func handle
  handle:
    mov r2, 1
    mov r3, r1
  work:
    mul r2, r3
    and r2, 1048575
    sub r3, 1
    cmp r3, 0
    jgt work
    ret
)";

}  // namespace

int main() {
  using namespace vcfr;
  const auto original = isa::assemble(kService);
  const auto golden = emu::run_image(original);
  std::printf("service responses (un-randomized reference): ");
  for (uint32_t v : golden.output) std::printf("%u ", v);
  std::printf("\n\n");

  // Boot epoch 0.
  rewriter::RandomizeOptions opts;
  opts.seed = 100;
  auto cur_rr = rewriter::randomize(original, opts);
  binary::Memory mem;
  binary::load(cur_rr.vcfr, mem);
  auto emu_ptr = std::make_unique<emu::Emulator>(cur_rr.vcfr, mem);
  emu_ptr->set_enforce_tags(true);

  std::vector<rewriter::RandomizeResult> epochs;
  uint32_t leaked_epoch0 = 0;
  int epoch = 0;

  // Serve: step until halted, re-randomizing every ~120 instructions
  // (a few requests per epoch).
  uint64_t since_swap = 0;
  while (!emu_ptr->halted() && emu_ptr->error().empty()) {
    if (!emu_ptr->step()) break;
    ++since_swap;
    if (epoch == 0 && leaked_epoch0 == 0 &&
        cur_rr.vcfr.tables.is_randomized_addr(emu_ptr->state().pc)) {
      leaked_epoch0 = emu_ptr->state().pc;  // the attacker's side channel
    }
    if (since_swap >= 120 && !emu_ptr->halted()) {
      since_swap = 0;
      ++epoch;
      rewriter::RandomizeOptions fresh;
      fresh.seed = 100 + static_cast<uint64_t>(epoch);
      epochs.push_back(rewriter::randomize(original, fresh));
      emu::LiveRerandomizeStats stats;
      emu_ptr = emu::rerandomize_live(*emu_ptr, mem, cur_rr, epochs.back(),
                                      &stats);
      emu_ptr->set_enforce_tags(true);
      cur_rr = epochs.back();
      std::printf("epoch %d: re-randomized live (%u stack slots, %u table "
                  "slots re-translated; PC moved: %s)\n",
                  epoch, stats.stack_slots_translated,
                  stats.reloc_slots_patched,
                  stats.pc_translated ? "yes" : "no");
    }
  }

  std::printf("\nservice responses across %d epochs:        ", epoch + 1);
  for (uint32_t v : emu_ptr->output()) std::printf("%u ", v);
  const bool same = emu_ptr->output() == golden.output;
  std::printf("\nresponses identical to reference: %s\n",
              same ? "YES" : "NO (bug!)");

  // The attacker replays their epoch-0 knowledge against the final epoch.
  std::printf("\nattacker's leaked epoch-0 address 0x%x: ", leaked_epoch0);
  if (cur_rr.vcfr.tables.is_randomized_addr(leaked_epoch0)) {
    std::printf("still maps (unlucky collision)\n");
  } else {
    std::printf("maps to nothing in epoch %d — knowledge expired (SV-C)\n",
                epoch);
  }
  return same ? 0 : 1;
}
