// Quickstart: the whole VCFR pipeline on a small program.
//
//   1. assemble VX source into an original-layout image;
//   2. randomize it (producing a naive-ILR image and a VCFR image with
//      translation tables);
//   3. run all three on the golden-model emulator (identical outputs);
//   4. run all three on the cycle simulator and compare IPC/IL1 behaviour.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "emu/emulator.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"

namespace {

constexpr const char* kSource = R"(
  .name quickstart
  .entry main
  .data 0x10000000
  table:
    .ptr double_it
    .ptr square_it
  .text
  .func main
  main:
    mov r1, 9
    mov r5, @table
    ld r6, [r5]        ; function pointer: double_it
    callr r6
    out r1             ; 18
    ld r6, [r5+4]      ; square_it
    callr r6
    out r1             ; 324
    call sum_to_ten
    out r2             ; 55
    halt
  .func double_it
  double_it:
    add r1, r1
    ret
  .func square_it
  square_it:
    mul r1, r1
    ret
  .func sum_to_ten
  sum_to_ten:
    mov r2, 0
    mov r3, 1
  loop:
    add r2, r3
    add r3, 1
    cmp r3, 10
    jle loop
    ret
)";

void show(const char* tag, const vcfr::emu::RunResult& r) {
  std::printf("  %-9s halted=%d output=[", tag, r.halted);
  for (size_t i = 0; i < r.output.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", r.output[i]);
  }
  std::printf("] instructions=%llu\n",
              static_cast<unsigned long long>(r.stats.instructions));
}

void show_sim(const char* tag, const vcfr::sim::SimResult& r) {
  std::printf("  %-9s IPC=%.3f cycles=%llu IL1-miss=%.2f%% DRC-lookups=%llu\n",
              tag, r.ipc(), static_cast<unsigned long long>(r.cycles),
              100 * r.il1.miss_rate(),
              static_cast<unsigned long long>(r.drc.lookups));
}

}  // namespace

int main() {
  using namespace vcfr;

  std::printf("== 1. assemble\n");
  const binary::Image original = isa::assemble(kSource);
  std::printf("%zu code bytes at 0x%x, %zu relocations\n\n",
              original.code.size(), original.code_base,
              original.relocs.size());
  std::printf("first instructions:\n%s\n",
              isa::listing(original).substr(0, 240).c_str());

  std::printf("== 2. randomize (seed 42)\n");
  rewriter::RandomizeOptions opts;
  opts.seed = 42;
  const rewriter::RandomizeResult rr = rewriter::randomize(original, opts);
  std::printf("relocated %zu instructions into [0x%x, 0x%x); "
              "%zu derand + %zu rand table entries\n\n",
              rr.placement.size(), rr.naive.rand_base,
              rr.naive.rand_base + rr.naive.rand_size,
              rr.vcfr.tables.derand.size(), rr.vcfr.tables.rand.size());

  std::printf("== 3. golden-model emulation (outputs must match)\n");
  show("original", emu::run_image(original));
  show("naive", emu::run_image(rr.naive));
  show("vcfr", emu::run_image(rr.vcfr));

  std::printf("\n== 4. cycle simulation\n");
  show_sim("original", sim::simulate(original, 1'000'000));
  show_sim("naive", sim::simulate(rr.naive, 1'000'000));
  show_sim("vcfr", sim::simulate(rr.vcfr, 1'000'000));

  std::printf("\nDone. See DESIGN.md for the architecture and bench/ for the"
              " paper's experiments.\n");
  return 0;
}
