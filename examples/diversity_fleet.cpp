// Software-diversity fleet study (§V-C "a common practice ... is to apply
// regular re-randomization", and the N-variant deployments of §VIII).
//
// Randomizes one binary N times with independent seeds and measures, over
// the fleet:
//   * placement overlap between variants (how much two randomized images
//     agree on any instruction's location — should be ~0);
//   * the entropy of a single instruction's location;
//   * the attacker's hit probability: the chance that an address learned
//     from one variant still names an instruction start in another (the
//     "outdated tables" argument of §V-C);
//   * gadget survival: only the failover set survives in *every* variant.
//
// The variants are spawned as real processes of the OS/fleet runtime
// (os::Kernel) — the same per-process tables the scheduler installs and
// flushes at context switches are what this study inspects.
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "gadget/scanner.hpp"
#include "os/kernel.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace vcfr;
  constexpr int kVariants = 8;

  const binary::Image base = workloads::make("xalan", 0);
  std::printf("fleet of %d independently randomized variants of '%s' "
              "(%zu code bytes)\n\n",
              kVariants, base.name.c_str(), base.code.size());

  os::Kernel kernel(os::KernelConfig{});
  for (int v = 0; v < kVariants; ++v) {
    os::ProcessConfig pc;
    pc.workload = "xalan";
    pc.scale = 0;
    pc.seed = 0x9e3779b97f4a7c15ull * (v + 1);
    kernel.spawn(pc);
  }
  // The kernel's per-process randomization state, without running anyone.
  std::vector<const rewriter::RandomizeResult*> fleet;
  fleet.reserve(kVariants);
  for (int v = 0; v < kVariants; ++v) {
    fleet.push_back(&kernel.randomization(v));
  }

  // --- placement overlap -----------------------------------------------------
  double total_pairs = 0, same_placement = 0;
  for (int a = 0; a < kVariants; ++a) {
    for (int b = a + 1; b < kVariants; ++b) {
      for (const auto& [orig, addr] : fleet[a]->placement) {
        auto it = fleet[b]->placement.find(orig);
        if (it != fleet[b]->placement.end()) {
          ++total_pairs;
          if (it->second == addr) ++same_placement;
        }
      }
    }
  }
  std::printf("placement overlap between variant pairs: %.4f%% "
              "(%g of %g instruction pairs)\n",
              100.0 * same_placement / total_pairs, same_placement,
              total_pairs);

  // --- per-instruction location entropy --------------------------------------
  const auto& first = *fleet.front();
  const double slots = first.naive.rand_size / 64.0;  // one per 64B slot
  const double entropy_bits = std::log2(slots * 59.0);  // slot * jitter
  std::printf("randomized-space entropy per instruction: ~%.1f bits "
              "(region 0x%x bytes)\n",
              entropy_bits, first.naive.rand_size);

  // --- cross-variant address knowledge ----------------------------------------
  // The attacker learns variant 0's layout (say, by a leak), then the fleet
  // re-randomizes: how many of those addresses still hit an instruction?
  uint64_t still_instr = 0, probes = 0;
  std::unordered_set<uint32_t> v1_starts;
  for (const auto& [orig, addr] : fleet[1]->placement) v1_starts.insert(addr);
  for (const auto& [orig, addr] : fleet[0]->placement) {
    ++probes;
    if (v1_starts.contains(addr)) ++still_instr;
  }
  std::printf("addresses leaked from variant 0 that still name an "
              "instruction start in variant 1: %llu of %llu (%.3f%%)\n",
              static_cast<unsigned long long>(still_instr),
              static_cast<unsigned long long>(probes),
              100.0 * still_instr / probes);

  // --- fleet-wide gadget survival ---------------------------------------------
  const auto scan0 = gadget::scan(base);
  size_t min_survivors = SIZE_MAX;
  std::unordered_set<uint32_t> common;
  bool first_variant = true;
  for (const auto& rr : fleet) {
    const auto sv = gadget::survival_after_randomization(scan0, rr->vcfr.tables);
    min_survivors = std::min(min_survivors, sv.after);
    std::unordered_set<uint32_t> here;
    for (const auto& g : sv.surviving) here.insert(g.addr);
    if (first_variant) {
      common = std::move(here);
      first_variant = false;
    } else {
      std::erase_if(common, [&](uint32_t a) { return !here.contains(a); });
    }
  }
  std::printf("gadgets in the original binary: %zu\n", scan0.gadgets.size());
  std::printf("gadgets surviving in every variant (the failover set): %zu\n",
              common.size());
  std::printf("\nConclusion: re-randomization invalidates leaked layouts; "
              "only the analysis-bounded failover set persists.\n");
  return 0;
}
