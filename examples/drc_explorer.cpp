// DRC design-space exploration (the ablation called out in DESIGN.md §6):
// sweeps the De-Randomization Cache's size and associativity on a
// DRC-hungry workload and reports miss rate, IPC, and the estimated
// per-access energy — the trade the paper resolves in §IV-B ("the design
// doesn't require a fully-associative DRC since the miss penalty is
// marginal"; "often small size directly mapped DRC cache consumes very
// small amount of energy").
#include <cstdio>

#include "power/energy.hpp"
#include "rewriter/randomizer.hpp"
#include "sim/cpu.hpp"
#include "workloads/suite.hpp"

int main() {
  using namespace vcfr;

  const auto image = workloads::make("xalan", 1);
  rewriter::RandomizeOptions opts;
  opts.seed = 7;
  const auto rr = rewriter::randomize(image, opts);

  const auto base = sim::simulate(image, 2'000'000);
  std::printf("workload: xalan (the paper's worst DRC client); baseline IPC "
              "%.3f\n\n",
              base.ipc());
  std::printf("%8s %6s %12s %10s %12s %14s\n", "entries", "assoc",
              "miss rate", "IPC", "vs base", "pJ/lookup");

  for (uint32_t entries : {32u, 64u, 128u, 256u, 512u}) {
    for (uint32_t assoc : {1u, 2u, 4u}) {
      if (entries % assoc != 0) continue;
      sim::CpuConfig cfg;
      cfg.drc.entries = entries;
      cfg.drc.assoc = assoc;
      const auto r = sim::simulate(rr.vcfr, 2'000'000, cfg);
      const double energy =
          power::sram_access_pj(entries * 8, assoc) *
          cfg.energy.drc_array_factor;
      std::printf("%8u %6u %11.1f%% %10.3f %11.1f%% %14.2f\n", entries, assoc,
                  100 * r.drc.miss_rate(), r.ipc(),
                  100 * (r.ipc() / base.ipc() - 1.0), energy);
    }
  }
  std::printf("\nReading: associativity buys little IPC because the miss "
              "penalty is an L2 hit; a small direct-mapped DRC is the "
              "right point — the paper's conclusion.\n");
  return 0;
}
