// End-to-end ROP attack-and-defense demo (the paper's §V-A scenario: a
// remote attacker subverts a service by sending malicious data).
//
// The "server" is a VX program with a classic stack-smash: its request
// handler copies a client-controlled number of bytes into a 64-byte stack
// buffer. The attacker (this file) plays by the paper's threat model —
// they know the *distributed* binary but cannot see the randomized image:
//
//   1. scan the distributed binary for gadgets (our ROPgadget);
//   2. build a request whose overflow overwrites the return address with a
//      chain:  pop r0; ret  ->  0xdead  ->  sys 1; ret
//      so the server emits the attacker's marker (stand-in for a shell);
//   3. send it to the un-randomized server: the marker appears (pwned);
//   4. send the same request to the VCFR-randomized server with the
//      randomized-tag protection on: the transfer to the gadget's original
//      address faults (attack blocked); the naive-ILR server faults too
//      (the bytes moved);
//   5. a legitimate request keeps working on every variant.
#include <cstdio>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "gadget/scanner.hpp"
#include "isa/assembler.hpp"
#include "rewriter/randomizer.hpp"

namespace {

constexpr uint32_t kRequestBase = 0x10000000;
constexpr uint32_t kMarker = 0xdead;

// The vulnerable service. `handle_request` copies request[1..n] into a
// 64-byte stack buffer where n = request[0] — no bounds check. The
// program's statically linked runtime provides the gadget material
// (an argument-restore helper and a write() syscall stub).
constexpr const char* kServer = R"(
  .name vulnerable-server
  .entry main
  .data 0x10000000
  request:
    .space 128
  .text
  .func main
  main:
    call handle_request
    mov r0, 1
    out r0             ; "request served" status
    halt
  .func handle_request
  handle_request:
    sub sp, 64         ; char buf[64]
    mov r1, @request
    ldb r2, [r1]       ; n = request[0]  (attacker controlled!)
    mov r3, 0
  copy:
    cmp r3, r2
    jae done
    add r1, 1
    ldb r4, [r1]
    mov r5, sp
    add r5, r3
    stb r4, [r5]       ; buf[i] = request[1+i]  -- no bounds check
    add r3, 1
    jmp copy
  done:
    add sp, 64
    ret
  .func rt_restore     ; varargs/argument restore helper: pop r0; ret
  rt_restore:
    pop r0
    ret
  .func rt_write       ; write() syscall stub: sys 1; ret
  rt_write:
    sys 1
    ret
)";

/// Builds the malicious request: 64 filler bytes, then the ROP chain that
/// replaces the saved return address.
std::vector<uint8_t> build_exploit(uint32_t pop_gadget, uint32_t sys_gadget) {
  std::vector<uint8_t> req;
  const auto push32 = [&](uint32_t v) {
    req.push_back(static_cast<uint8_t>(v));
    req.push_back(static_cast<uint8_t>(v >> 8));
    req.push_back(static_cast<uint8_t>(v >> 16));
    req.push_back(static_cast<uint8_t>(v >> 24));
  };
  for (int i = 0; i < 64; ++i) req.push_back('A');
  push32(pop_gadget);  // overwrites the saved return address
  push32(kMarker);     // popped into r0 by the first gadget
  push32(sys_gadget);  // sys 1 emits r0: the "shell"
  std::vector<uint8_t> framed;
  framed.push_back(static_cast<uint8_t>(req.size()));
  framed.insert(framed.end(), req.begin(), req.end());
  return framed;
}

struct ServeResult {
  bool served = false;   // normal completion
  bool pwned = false;    // attacker marker appeared in the output
  std::string fault;
};

ServeResult serve(const vcfr::binary::Image& image,
                  const std::vector<uint8_t>& request, bool enforce_tags) {
  vcfr::binary::Memory mem;
  vcfr::binary::load(image, mem);
  for (size_t i = 0; i < request.size(); ++i) {
    mem.write8(kRequestBase + static_cast<uint32_t>(i), request[i]);
  }
  vcfr::emu::Emulator emulator(image, mem);
  emulator.set_enforce_tags(enforce_tags);
  vcfr::emu::RunLimits limits;
  limits.max_instructions = 1'000'000;
  const auto r = emulator.run(limits);
  ServeResult out;
  out.served = r.halted;
  out.fault = r.error;
  for (uint32_t v : r.output) {
    if (v == kMarker) out.pwned = true;
  }
  return out;
}

void report(const char* label, const ServeResult& r) {
  if (r.pwned) {
    std::printf("  %-22s ATTACKER SHELL (marker 0x%x emitted)\n", label,
                kMarker);
  } else if (!r.fault.empty()) {
    std::printf("  %-22s attack stopped: %s\n", label, r.fault.c_str());
  } else if (r.served) {
    std::printf("  %-22s served normally\n", label);
  } else {
    std::printf("  %-22s hung / killed\n", label);
  }
}

}  // namespace

int main() {
  using namespace vcfr;

  const binary::Image server = isa::assemble(kServer);

  // --- the attacker studies the distributed binary ------------------------
  const auto pool = gadget::scan(server);
  uint32_t pop_gadget = 0, sys_gadget = 0;
  for (const auto& g : pool.gadgets) {
    if (g.kind == gadget::GadgetKind::kPopReg && g.instrs.front().rd == 0 &&
        pop_gadget == 0) {
      pop_gadget = g.addr;
    }
    if (g.kind == gadget::GadgetKind::kSys && sys_gadget == 0) {
      sys_gadget = g.addr;
    }
  }
  std::printf("attacker found %zu gadgets; using pop-r0 @0x%x and sys @0x%x\n\n",
              pool.gadgets.size(), pop_gadget, sys_gadget);
  if (pop_gadget == 0 || sys_gadget == 0) {
    std::printf("gadget hunt failed — demo aborted\n");
    return 1;
  }

  const auto exploit = build_exploit(pop_gadget, sys_gadget);
  std::vector<uint8_t> benign = {5, 'h', 'e', 'l', 'l', 'o'};

  // --- deploy three server variants ----------------------------------------
  rewriter::RandomizeOptions opts;
  opts.seed = 0xfeedface;
  const auto rr = rewriter::randomize(server, opts);

  std::printf("== benign request\n");
  report("original", serve(server, benign, false));
  report("naive-ILR", serve(rr.naive, benign, false));
  report("VCFR (tags on)", serve(rr.vcfr, benign, true));

  std::printf("\n== malicious request (ROP chain)\n");
  const auto r_orig = serve(server, exploit, false);
  report("original", r_orig);
  const auto r_naive = serve(rr.naive, exploit, false);
  report("naive-ILR", r_naive);
  const auto r_vcfr = serve(rr.vcfr, exploit, true);
  report("VCFR (tags on)", r_vcfr);

  const bool demo_ok = r_orig.pwned && !r_naive.pwned && !r_vcfr.pwned;
  std::printf("\n%s\n", demo_ok
                            ? "Demo result: exploit works un-randomized, "
                              "blocked by both randomized variants."
                            : "Demo result: UNEXPECTED — see above.");
  return demo_ok ? 0 : 1;
}
