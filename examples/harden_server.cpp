// End-to-end ROP attack-and-defense demo (the paper's §V-A scenario: a
// remote attacker subverts a service by sending malicious data).
//
// The "server" is the shared vulnerable request handler from
// workloads/wl_server.hpp (the same program the serving subsystem in
// src/serve/ drives under load): its handler copies a client-controlled
// number of bytes into a 64-byte stack buffer. The attacker (this file)
// plays by the paper's threat model — they know the *distributed* binary
// but cannot see the randomized image:
//
//   1. scan the distributed binary for gadgets (our ROPgadget);
//   2. build a request whose overflow overwrites the return address with a
//      chain:  pop r0; ret  ->  0xdead  ->  sys 1; ret
//      so the server emits the attacker's marker (stand-in for a shell);
//   3. send it to the un-randomized server: the marker appears (pwned);
//   4. send the same request to the VCFR-randomized server with the
//      randomized-tag protection on: the transfer to the gadget's original
//      address faults (attack blocked); the naive-ILR server faults too
//      (the bytes moved);
//   5. a legitimate request keeps working on every variant.
#include <cstdio>

#include "binary/loader.hpp"
#include "emu/emulator.hpp"
#include "gadget/scanner.hpp"
#include "rewriter/randomizer.hpp"
#include "workloads/wl_server.hpp"

namespace {

using vcfr::workloads::kServerMarker;
using vcfr::workloads::kServerRequestBase;

struct ServeResult {
  bool served = false;   // normal completion
  bool pwned = false;    // attacker marker appeared in the output
  std::string fault;
};

ServeResult serve(const vcfr::binary::Image& image,
                  const std::vector<uint8_t>& request, bool enforce_tags) {
  vcfr::binary::Memory mem;
  vcfr::binary::load(image, mem);
  for (size_t i = 0; i < request.size(); ++i) {
    mem.write8(kServerRequestBase + static_cast<uint32_t>(i), request[i]);
  }
  vcfr::emu::Emulator emulator(image, mem);
  emulator.set_enforce_tags(enforce_tags);
  vcfr::emu::RunLimits limits;
  limits.max_instructions = 1'000'000;
  const auto r = emulator.run(limits);
  ServeResult out;
  out.served = r.halted;
  out.fault = r.error;
  for (uint32_t v : r.output) {
    if (v == kServerMarker) out.pwned = true;
  }
  return out;
}

void report(const char* label, const ServeResult& r) {
  if (r.pwned) {
    std::printf("  %-22s ATTACKER SHELL (marker 0x%x emitted)\n", label,
                kServerMarker);
  } else if (!r.fault.empty()) {
    std::printf("  %-22s attack stopped: %s\n", label, r.fault.c_str());
  } else if (r.served) {
    std::printf("  %-22s served normally\n", label);
  } else {
    std::printf("  %-22s hung / killed\n", label);
  }
}

}  // namespace

int main() {
  using namespace vcfr;

  const binary::Image server = workloads::make_server();

  // --- the attacker studies the distributed binary ------------------------
  const auto pool = gadget::scan(server);
  uint32_t pop_gadget = 0, sys_gadget = 0;
  for (const auto& g : pool.gadgets) {
    if (g.kind == gadget::GadgetKind::kPopReg && g.instrs.front().rd == 0 &&
        pop_gadget == 0) {
      pop_gadget = g.addr;
    }
    if (g.kind == gadget::GadgetKind::kSys && sys_gadget == 0) {
      sys_gadget = g.addr;
    }
  }
  std::printf("attacker found %zu gadgets; using pop-r0 @0x%x and sys @0x%x\n\n",
              pool.gadgets.size(), pop_gadget, sys_gadget);
  if (pop_gadget == 0 || sys_gadget == 0) {
    std::printf("gadget hunt failed — demo aborted\n");
    return 1;
  }

  const auto exploit = workloads::build_exploit_request(pop_gadget, sys_gadget);
  const auto benign =
      workloads::frame_request({'h', 'e', 'l', 'l', 'o'});

  // --- deploy three server variants ----------------------------------------
  rewriter::RandomizeOptions opts;
  opts.seed = 0xfeedface;
  const auto rr = rewriter::randomize(server, opts);

  std::printf("== benign request\n");
  report("original", serve(server, benign, false));
  report("naive-ILR", serve(rr.naive, benign, false));
  report("VCFR (tags on)", serve(rr.vcfr, benign, true));

  std::printf("\n== malicious request (ROP chain)\n");
  const auto r_orig = serve(server, exploit, false);
  report("original", r_orig);
  const auto r_naive = serve(rr.naive, exploit, false);
  report("naive-ILR", r_naive);
  const auto r_vcfr = serve(rr.vcfr, exploit, true);
  report("VCFR (tags on)", r_vcfr);

  const bool demo_ok = r_orig.pwned && !r_naive.pwned && !r_vcfr.pwned;
  std::printf("\n%s\n", demo_ok
                            ? "Demo result: exploit works un-randomized, "
                              "blocked by both randomized variants."
                            : "Demo result: UNEXPECTED — see above.");
  return demo_ok ? 0 : 1;
}
